"""The coordinator: routing, two-phase commit, crash recovery.

:class:`ShardedCommunity` is the client face of the sharded
object-community server.  It forks N shard worker processes (each
hosting a :class:`~repro.distributed.shardbase.ShardObjectBase` over the
full specification), routes every request to the owning shard by
identity hash (or placement pin), and exposes the society interface of
a single object base: ``create`` / ``occur`` / ``get`` /
``is_permitted`` / ``step`` / ``run_active`` plus merged state and
telemetry.

**Cross-shard synchronization sets** (Section 6's communicating
modules): when a worker reports ``needs_2pc`` -- its dry run captured
event calls into identities owned by other shards -- the coordinator
drives a two-phase protocol:

1. *Prepare fixpoint*: route the captured calls to their owners, ask
   every participating shard to dry-run its sub-unit
   (``prepare_group``), and fold newly discovered remote calls back in
   until the participant set is closed (bounded by
   ``MAX_2PC_ROUNDS``).
2. *Commit*: all shards voted yes -> each commits its sub-unit as one
   atomic local unit (``commit_group``).  *Abort*: any no-vote ->
   every participant journals a rollback tombstone (``abort_group``)
   and the original denial is re-raised with its original type.

The coordinator is single-threaded, so distributed units are serialized
-- there are no concurrent conflicting prepares and a yes-vote cannot
be invalidated before its commit arrives.

**Robustness**: every request has a timeout; on timeout, a broken pipe
or a dead worker the coordinator kills and respawns the shard (which
recovers from its spool -- snapshot + journal suffix replay) and
retries with exponential backoff.  Mutating requests carry a request id
the worker spools with the journal, so a retry after a crashed-but-
applied request is acknowledged instead of applied twice.

**Telemetry** (``observe=True`` for metrics, ``trace=True`` for both):
the coordinator opens one ``request`` root span per society-interface
call and a ``dispatch`` child span per wire round-trip, stamps request
frames with the trace context, grafts the span batches workers ship
back under the carrying dispatch span, and emits the *fully merged*
request tree to its ring (and the optional slow-request log) -- see
:mod:`repro.observability.distributed`.  Retries, timeouts and crash
respawns surface as counters and annotated ``respawn`` spans; 2PC
phases appear as ``2pc.prepare`` / ``2pc.commit`` / ``2pc.abort``
spans with the root marked ``2pc=True``.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datatypes.values import Value, from_python
from repro.diagnostics import CheckError, RuntimeSpecError, TrollError
from repro.distributed.shardbase import Partitioner
from repro.distributed.wire import (
    WireError,
    WireTimeout,
    recv_frame,
    send_frame,
)
from repro.distributed.worker import (
    error_class,
    occurrence_from_wire,
    worker_main,
)
from repro.observability.distributed import (
    SlowRequestLog,
    attach_remote_spans,
    request_traces,
    trace_by_id,
)
from repro.observability.export import merge_fleet_registry
from repro.observability.hooks import Observability
from repro.observability.profile import ProfileNode
from repro.observability.tracer import RingBufferSink, Span
from repro.lang.checker import check_specification
from repro.lang.parser import parse_specification
from repro.runtime.compilespec import compile_specification
from repro.runtime.persistence import (
    _payload_from_json,
    _payload_to_json,
    value_to_json,
    value_from_json,
)

#: bound on the prepare fixpoint (each round can only add shards or
#: items; real calling chains close in one or two rounds)
MAX_2PC_ROUNDS = 8

#: ceiling on the retry backoff: one worker's restart must never stall
#: traffic for longer than this per attempt, however many attempts the
#: exponential curve has already climbed
BACKOFF_CAP = 1.0

#: shared no-op `with` target for untraced phase spans
_NULL_CONTEXT = nullcontext()


def backoff_delay(
    attempt: int,
    base: float,
    cap: float = BACKOFF_CAP,
    jitter: Optional[float] = None,
) -> float:
    """The sleep before retry ``attempt + 1``: exponential in
    ``attempt``, capped at ``cap``, with jitter drawn uniformly from
    ``[delay/2, delay]`` so simultaneous retries against one restarting
    worker de-synchronize instead of stampeding in lockstep.

    ``jitter`` pins the uniform draw to a value in ``[0, 1]`` for
    deterministic tests; ``None`` draws from :func:`random.random`."""
    if base <= 0:
        return 0.0
    delay = min(float(cap), base * (2 ** attempt))
    fraction = random.random() if jitter is None else jitter
    return delay * (0.5 + 0.5 * fraction)


def remote_error(
    response: Dict[str, Any], index: Optional[int] = None
) -> TrollError:
    """Rebuild a shard-side error with its original type *and* its
    original error-carrying contract: the failing
    :class:`~repro.diagnostics.OccurrenceRef` and the shard identity
    travel on the error frame and are restored here."""
    exc = error_class(response.get("error", "RuntimeSpecError"))(
        response.get("message", f"shard {index} error")
    )
    failed = response.get("failed_ref")
    if failed:
        exc.occurrence = occurrence_from_wire(failed)
    shard = response.get("shard", index)
    if shard is not None:
        exc.shard = shard
    return exc


class ShardUnavailable(TrollError):
    """A worker stayed unreachable through every retry and restart."""


class _WorkerHandle:
    __slots__ = ("index", "process", "sock")

    def __init__(self, index: int, process, sock: socket.socket):
        self.index = index
        self.process = process
        self.sock = sock


def _item_key(item: Dict[str, Any]) -> Tuple[str, str, str, str]:
    """Canonical dedup key of a wire item (or captured remote call)."""
    if item.get("type") == "create":
        return (
            item["class"],
            "create:" + json.dumps(item.get("identification"), sort_keys=True),
            item.get("event") or "",
            json.dumps(item.get("args") or [], sort_keys=True),
        )
    return (
        item["class"],
        json.dumps(item["key"], sort_keys=True),
        item["event"],
        json.dumps(item.get("args") or [], sort_keys=True),
    )


def merge_states(states: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard ``dump_state`` snapshots into one canonical
    snapshot (instances sorted by class and identity; class-object
    member sets unioned and sorted)."""
    instances: List[Dict[str, Any]] = []
    class_objects: Dict[str, List[Any]] = {}
    for state in states:
        instances.extend(state.get("instances", []))
        for name, members in state.get("class_objects", {}).items():
            class_objects.setdefault(name, []).extend(members)
    instances.sort(key=lambda r: (r["class"], json.dumps(r["key"], sort_keys=True)))
    first = states[0] if states else {}
    return {
        "format": first.get("format"),
        "permission_mode": first.get("permission_mode"),
        "instances": instances,
        "class_objects": {
            name: sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
            for name, members in class_objects.items()
        },
    }


def normalize_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """A single-process ``dump_state`` in the same canonical order as
    :func:`merge_states` output (the oracle side of equivalence tests)."""
    return merge_states([state])


class ShardedCommunity:
    """A society interface over N shard worker processes."""

    def __init__(
        self,
        spec: str,
        shards: int = 4,
        placement: Optional[Dict[str, int]] = None,
        spool_dir: Optional[str] = None,
        permission_mode: str = "incremental",
        check_constraints: bool = True,
        probe_cache: bool = True,
        snapshot_interval: int = 64,
        request_timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
        observe: bool = False,
        trace: bool = False,
        trace_capacity: int = 256,
        slow_threshold: Optional[float] = None,
        slow_log_path: Optional[str] = None,
        span_batch_limit: Optional[int] = None,
        profile: Optional[str] = None,
        profile_interval: int = 16,
        profile_limit: Optional[int] = None,
        storage: Optional[str] = None,
        hot_set: Optional[int] = None,
        txn_compile: Optional[bool] = None,
        start: bool = True,
    ):
        if not isinstance(spec, str):
            raise CheckError(
                "ShardedCommunity needs specification text (workers "
                "re-parse it in their own processes)"
            )
        checked = check_specification(parse_specification(spec))
        checked.raise_if_errors()
        self.compiled = compile_specification(checked)
        self.spec_text = spec
        self.shards = shards
        self.partitioner = Partitioner(self.compiled, shards, placement)
        self.placement = dict(placement or {})
        self.spool_dir = spool_dir
        self.permission_mode = permission_mode
        self.check_constraints = check_constraints
        self.probe_cache = probe_cache
        self.snapshot_interval = snapshot_interval
        self.request_timeout = request_timeout
        self.retries = retries
        self.backoff = backoff
        self.observe = observe
        self.trace = trace
        self.span_batch_limit = span_batch_limit
        #: spec-level profiling mode shipped to every worker ("exact" /
        #: "sampling" / None); workers drain bounded profile dumps onto
        #: response frames, merged per shard for :meth:`fleet_profile`
        self.profile = profile
        self.profile_interval = profile_interval
        self.profile_limit = profile_limit
        #: storage backend spec shipped to every worker; path-bearing
        #: specs are suffixed per shard (storage_for_shard) so workers
        #: never share page files
        self.storage = storage
        self.hot_set = hot_set
        #: fused-transaction mode shipped to every worker (None defers
        #: to each worker process's REPRO_TXN_COMPILE default)
        self.txn_compile = txn_compile
        self.profile_pruned = 0
        self._profiles: Dict[int, Dict[str, Any]] = {}
        #: worker restarts observed (crash detection + recovery)
        self.restarts = 0
        #: telemetry spans truncated off response frames (fleet-wide
        #: counterpart lives in each worker's ``spans_dropped``)
        self.spans_dropped = 0
        self.in_flight = 0
        self.slow_log: Optional[SlowRequestLog] = None
        if trace:
            sinks = [RingBufferSink(trace_capacity)]
            if slow_threshold is not None:
                self.slow_log = SlowRequestLog(slow_threshold, path=slow_log_path)
                sinks.append(self.slow_log)
            self.obs: Optional[Observability] = Observability(
                tracing=True, sinks=sinks
            )
        elif observe:
            self.obs = Observability(tracing=False)
        else:
            self.obs = None
        self._tids = itertools.count(1)
        self._sids = itertools.count(1)
        self._current_tid: Optional[str] = None
        self._root: Optional[Span] = None
        self._workers: List[Optional[_WorkerHandle]] = [None] * shards
        self._rids = itertools.count(1)
        self._closed = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        for index in range(self.shards):
            if self._workers[index] is None:
                self._spawn(index)

    def _worker_config(self, index: int) -> Dict[str, Any]:
        return {
            "spec": self.spec_text,
            "shard_index": index,
            "shards": self.shards,
            "placement": self.placement,
            "spool_dir": self.spool_dir,
            "permission_mode": self.permission_mode,
            "check_constraints": self.check_constraints,
            "probe_cache": self.probe_cache,
            "snapshot_interval": self.snapshot_interval,
            "observe": self.observe,
            "trace": self.trace,
            "span_batch_limit": self.span_batch_limit,
            "profile": self.profile,
            "profile_interval": self.profile_interval,
            "profile_limit": self.profile_limit,
            "storage": self.storage,
            "hot_set": self.hot_set,
            "txn_compile": self.txn_compile,
        }

    def _spawn(self, index: int) -> _WorkerHandle:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        process = ctx.Process(
            target=worker_main,
            args=(child_sock, self._worker_config(index)),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child_sock.close()
        handle = _WorkerHandle(index, process, parent_sock)
        self._workers[index] = handle
        return handle

    def _restart(self, index: int) -> _WorkerHandle:
        """Kill whatever is left of a shard and respawn it; the fresh
        worker recovers from its spool (snapshot + journal replay)."""
        handle = self._workers[index]
        if handle is not None:
            try:
                handle.sock.close()
            except OSError:
                pass
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            self._workers[index] = None
        self.restarts += 1
        return self._spawn(index)

    def kill_worker(self, index: int) -> None:
        """Hard-kill one shard process (fault injection for tests); the
        next request to the shard triggers crash detection + restart."""
        handle = self._workers[index]
        if handle is not None and handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5)

    # ------------------------------------------------------------------
    # The request machinery: timeout, retry/backoff, restart
    # ------------------------------------------------------------------

    def _request(
        self, index: int, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        if self._closed:
            raise ShardUnavailable("the community has been closed")
        obs = self.obs
        if obs is None:
            return self._request_attempts(index, message, timeout, None)
        op = message.get("op")
        start = time.perf_counter()
        try:
            if obs.tracing:
                # One dispatch span per wire round-trip; the context on
                # the frame tells the worker which span to parent under.
                sid = f"s{next(self._sids)}"
                message = dict(
                    message, trace={"tid": self._current_tid or "", "sid": sid}
                )
                with obs.tracer.span(
                    "dispatch", op=op, shard=index, sid=sid
                ) as span:
                    response = self._request_attempts(index, message, timeout, span)
                    batch = response.pop("spans", None)
                    if batch:
                        attach_remote_spans(span, batch)
                    dropped = response.pop("spans_dropped", 0)
                    if dropped:
                        self.spans_dropped += dropped
                        obs.metrics.counter("rpc.spans_dropped").inc(dropped)
                        span.set("spans_dropped", dropped)
                return response
            return self._request_attempts(index, message, timeout, None)
        finally:
            obs.metrics.histogram("rpc").observe(time.perf_counter() - start)
            obs.metrics.counter("rpc.requests").inc(labels=(str(op),))

    def _request_attempts(
        self,
        index: int,
        message: Dict[str, Any],
        timeout: Optional[float],
        span: Optional[Span],
    ) -> Dict[str, Any]:
        timeout = self.request_timeout if timeout is None else timeout
        attempts = self.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            handle = self._workers[index]
            if handle is None or not handle.process.is_alive():
                handle = self._restart_observed(index, span, "dead_worker")
            try:
                send_frame(handle.sock, message)
                response = recv_frame(handle.sock, timeout=timeout)
                # Profile batches ride every response frame (tracing or
                # not); absorb them here so no caller ever sees them.
                dump = response.pop("profile", None)
                if dump is not None:
                    self._absorb_profile(
                        index, dump, response.pop("profile_pruned", 0)
                    )
                return response
            except (WireError, OSError) as exc:
                # Crash or hang.  A timed-out socket cannot be reused (a
                # late reply would desynchronize the framing), so the
                # shard is restarted either way; the worker's applied-id
                # spool makes retried mutations exactly-once.
                last_error = exc
                if self.obs is not None:
                    kind = "timeout" if isinstance(exc, WireTimeout) else "crash"
                    self.obs.metrics.counter("rpc.failures").inc(labels=(kind,))
                self._restart_observed(index, span, type(exc).__name__)
                if attempt + 1 < attempts:
                    if self.obs is not None:
                        self.obs.metrics.counter("rpc.retries").inc()
                    if span is not None:
                        span.set("retries", attempt + 1)
                    time.sleep(backoff_delay(attempt, self.backoff))
        raise ShardUnavailable(
            f"shard {index} unreachable after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )

    def _restart_observed(
        self, index: int, span: Optional[Span], reason: str
    ) -> _WorkerHandle:
        """Restart a shard, surfacing the respawn in telemetry (a
        counter, plus an annotated span inside the carrying dispatch)."""
        obs = self.obs
        if obs is None:
            return self._restart(index)
        obs.metrics.counter("rpc.respawns").inc(labels=(str(index),))
        if obs.tracing and span is not None:
            with obs.tracer.span("respawn", shard=index, reason=reason):
                return self._restart(index)
        return self._restart(index)

    def _remote_error(
        self, response: Dict[str, Any], index: Optional[int] = None
    ) -> TrollError:
        return remote_error(response, index)

    def _call(
        self, index: int, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        response = self._request(index, message, timeout)
        if not response.get("ok"):
            raise self._remote_error(response, index)
        return response

    def _rid(self) -> str:
        return f"r{next(self._rids)}"

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _route(self, class_name: str, key) -> Tuple[Any, int]:
        if class_name not in self.compiled.classes:
            raise CheckError(f"unknown class {class_name!r}")
        payload = key.payload if isinstance(key, Value) else key
        return payload, self.partitioner.shard_of(class_name, payload)

    @staticmethod
    def _encode_args(args: Sequence[object]) -> List[Any]:
        return [value_to_json(from_python(a)) for a in args]

    # ------------------------------------------------------------------
    # The society interface
    # ------------------------------------------------------------------

    def _observed(self, op: str, attributes: Dict[str, Any], thunk):
        """Run one society-interface call under telemetry: a fresh
        trace id, a ``request`` root span (when tracing) every dispatch
        nests under, and per-op latency histograms.  Never entered when
        ``self.obs`` is None -- the disabled path stays zero-overhead."""
        obs = self.obs
        self.in_flight += 1
        start = time.perf_counter()
        try:
            if obs.tracing:
                tid = f"t{next(self._tids)}"
                previous = (self._current_tid, self._root)
                self._current_tid = tid
                try:
                    with obs.tracer.span(
                        "request", op=op, tid=tid, **attributes
                    ) as span:
                        self._root = span
                        return thunk()
                finally:
                    self._current_tid, self._root = previous
            return thunk()
        finally:
            self.in_flight -= 1
            elapsed = time.perf_counter() - start
            obs.metrics.histogram("request").observe(elapsed)
            obs.metrics.histogram(f"request.{op}").observe(elapsed)

    def create(
        self,
        class_name: str,
        identification: Optional[dict] = None,
        event: Optional[str] = None,
        args: Sequence[object] = (),
    ):
        """Create an instance on its owning shard; returns the identity
        payload (the routing key for later calls)."""
        if self.obs is not None:
            return self._observed(
                "create",
                {"class": class_name},
                lambda: self._create_core(class_name, identification, event, args),
            )
        return self._create_core(class_name, identification, event, args)

    def _create_core(
        self,
        class_name: str,
        identification: Optional[dict],
        event: Optional[str],
        args: Sequence[object],
    ):
        if class_name not in self.compiled.classes:
            raise CheckError(f"unknown class {class_name!r}")
        compiled = self.compiled.classes[class_name]
        payload = self.partitioner.identity_payload(compiled, identification)
        shard = self.partitioner.shard_of(class_name, payload)
        item = {
            "type": "create",
            "class": class_name,
            "identification": {
                name: value_to_json(from_python(v))
                for name, v in (identification or {}).items()
            },
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="create", rid=self._rid())
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            self._run_2pc({shard: [item]}, response.get("remote", []))
        return payload

    def occur(
        self, class_name: str, key, event: str, args: Sequence[object] = ()
    ) -> None:
        """Drive one event occurrence (plus its synchronization set,
        across shards when event calling requires it)."""
        if self.obs is not None:
            return self._observed(
                "occur",
                {"class": class_name, "event": event},
                lambda: self._occur_core(class_name, key, event, args),
            )
        return self._occur_core(class_name, key, event, args)

    def _occur_core(
        self, class_name: str, key, event: str, args: Sequence[object]
    ) -> None:
        payload, shard = self._route(class_name, key)
        item = {
            "type": "occur",
            "class": class_name,
            "key": _payload_to_json(payload),
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="occur", rid=self._rid())
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            self._run_2pc({shard: [item]}, response.get("remote", []))

    def get(
        self, class_name: str, key, attribute: str, args: Sequence[object] = ()
    ) -> Value:
        if self.obs is not None:
            return self._observed(
                "get",
                {"class": class_name, "attribute": attribute},
                lambda: self._get_core(class_name, key, attribute, args),
            )
        return self._get_core(class_name, key, attribute, args)

    def _get_core(
        self, class_name: str, key, attribute: str, args: Sequence[object]
    ) -> Value:
        payload, shard = self._route(class_name, key)
        response = self._call(
            shard,
            {
                "op": "get",
                "class": class_name,
                "key": _payload_to_json(payload),
                "attribute": attribute,
                "args": self._encode_args(args),
            },
        )
        return value_from_json(response["value"])

    def is_permitted(
        self, class_name: str, key, event: str, args: Sequence[object] = ()
    ) -> bool:
        if self.obs is not None:
            return self._observed(
                "is_permitted",
                {"class": class_name, "event": event},
                lambda: self._is_permitted_core(class_name, key, event, args),
            )
        return self._is_permitted_core(class_name, key, event, args)

    def _is_permitted_core(
        self, class_name: str, key, event: str, args: Sequence[object]
    ) -> bool:
        payload, shard = self._route(class_name, key)
        item = {
            "type": "occur",
            "class": class_name,
            "key": _payload_to_json(payload),
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="is_permitted")
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            ok, _failure, _groups = self._prepare_fixpoint(
                {shard: [item]}, response.get("remote", [])
            )
            return ok
        return bool(response.get("permitted"))

    def step(self) -> Optional[Tuple[str, Any, str]]:
        """Fire one enabled active event somewhere in the community;
        returns (class, key, event) or None at quiescence.  Shards are
        polled in index order; a cross-shard candidate whose distributed
        unit aborts is skipped this round."""
        if self.obs is not None:
            return self._observed("step", {}, self._step_core)
        return self._step_core()

    def _step_core(self) -> Optional[Tuple[str, Any, str]]:
        for shard in range(self.shards):
            response = self._call(shard, {"op": "step", "rid": self._rid()})
            status = response.get("status")
            if status == "fired":
                return (
                    response["class"],
                    _payload_from_json(response["key"]),
                    response["event"],
                )
            if status == "needs_2pc_candidate":
                item = {
                    "type": "occur",
                    "class": response["class"],
                    "key": response["key"],
                    "event": response["event"],
                    "args": [],
                }
                try:
                    self._run_2pc({shard: [item]}, [])
                except RuntimeSpecError:
                    continue
                return (
                    response["class"],
                    _payload_from_json(response["key"]),
                    response["event"],
                )
        return None

    def run_active(self, max_steps: int = 100) -> List[Tuple[str, Any, str]]:
        fired: List[Tuple[str, Any, str]] = []
        for _ in range(max_steps):
            occurrence = self.step()
            if occurrence is None:
                break
            fired.append(occurrence)
        return fired

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def _span(self, name: str, **attributes: Any):
        """A coordinator-side span context (shared no-op when tracing is
        off; the yielded value is then None)."""
        obs = self.obs
        if obs is not None and obs.tracing:
            return obs.tracer.span(name, **attributes)
        return _NULL_CONTEXT

    def _prepare_fixpoint(
        self,
        groups: Dict[int, List[Dict[str, Any]]],
        remote: List[Dict[str, Any]],
    ) -> Tuple[bool, Optional[Dict[str, Any]], Dict[int, List[Dict[str, Any]]]]:
        """Close the participant set: route captured remote calls to
        their owners and re-prepare until no new items appear.  Returns
        (all_voted_yes, failing_response_or_None, groups)."""
        seen = {
            _item_key(item) for items in groups.values() for item in items
        }
        queue = list(remote)
        with self._span("2pc.prepare") as span:
            for round_index in range(MAX_2PC_ROUNDS):
                for call in queue:
                    key = _item_key(call)
                    if key in seen:
                        continue
                    seen.add(key)
                    payload = _payload_from_json(call["key"])
                    owner = self.partitioner.shard_of(call["class"], payload)
                    groups.setdefault(owner, []).append(
                        {
                            "type": "occur",
                            "class": call["class"],
                            "key": call["key"],
                            "event": call["event"],
                            "args": call.get("args") or [],
                        }
                    )
                queue = []
                for shard in sorted(groups):
                    response = self._call(
                        shard, {"op": "prepare_group", "items": groups[shard]}
                    )
                    if not response.get("vote"):
                        if span is not None:
                            span.set("vote", False)
                            span.set("no_vote_shard", response.get("shard", shard))
                        return False, response, groups
                    for call in response.get("remote", []):
                        if _item_key(call) not in seen:
                            queue.append(call)
                if not queue:
                    if span is not None:
                        span.set("rounds", round_index + 1)
                        span.set("shards", sorted(groups))
                    return True, None, groups
        raise RuntimeSpecError(
            f"distributed synchronization set did not close within "
            f"{MAX_2PC_ROUNDS} prepare rounds (calling cycle across shards?)"
        )

    def _run_2pc(
        self,
        groups: Dict[int, List[Dict[str, Any]]],
        remote: List[Dict[str, Any]],
    ) -> None:
        obs = self.obs
        if self._root is not None:
            self._root.set("2pc", True)
        if obs is not None:
            obs.metrics.counter("2pc.units").inc()
        ok, failure, groups = self._prepare_fixpoint(groups, remote)
        if not ok:
            reason = failure.get("error", "RuntimeSpecError")
            message = failure.get("message", "distributed unit aborted")
            if obs is not None:
                obs.metrics.counter("2pc.aborts").inc(labels=(reason,))
            with self._span("2pc.abort", reason=reason):
                for shard in sorted(groups):
                    # Tombstones on every participant, best-effort: a
                    # shard that cannot journal the abort has nothing
                    # committed.
                    try:
                        self._call(
                            shard,
                            {
                                "op": "abort_group",
                                "items": groups[shard],
                                "reason": reason,
                                "message": message,
                            },
                        )
                    except TrollError:
                        pass
            # Re-raise with the original type, failing occurrence and
            # shard identity (they travelled on the no-vote response).
            raise self._remote_error(failure)
        with self._span("2pc.commit", shards=sorted(groups)):
            for shard in sorted(groups):
                # All voted yes, and the single-threaded coordinator
                # admits no conflicting unit in between -- commits
                # cannot be denied.  A crash mid-round is covered by
                # restart + the rid spool.
                self._call(
                    shard,
                    {
                        "op": "commit_group",
                        "rid": self._rid(),
                        "items": groups[shard],
                    },
                )
        if obs is not None:
            obs.metrics.counter("2pc.commits").inc()

    # ------------------------------------------------------------------
    # Merged state and telemetry
    # ------------------------------------------------------------------

    def merged_state(self) -> Dict[str, Any]:
        """The community's full state as one canonical ``dump_state``
        snapshot (compare against :func:`normalize_state` of an oracle)."""
        states = [
            self._call(shard, {"op": "dump"})["state"]
            for shard in range(self.shards)
        ]
        return merge_states(states)

    def merged_export(self) -> Dict[str, Any]:
        """Per-shard counters, the coordinator's own counters and
        metrics dump, plus community totals -- the document the fleet
        renderers (:func:`~repro.observability.export.render_fleet_prometheus`)
        consume."""
        shards = [
            self._call(shard, {"op": "export"}) for shard in range(self.shards)
        ]
        totals = {
            "requests": sum(s.get("requests", 0) for s in shards),
            "commits": sum(s.get("commits", 0) for s in shards),
            "rollbacks": sum(s.get("rollbacks", 0) for s in shards),
            "journal_depth": sum(s.get("journal_depth", 0) for s in shards),
            "restarts": self.restarts,
            "spans_dropped": self.spans_dropped
            + sum(s.get("spans_dropped", 0) for s in shards),
        }
        coordinator = {
            "restarts": self.restarts,
            "in_flight": self.in_flight,
            "spans_dropped": self.spans_dropped,
            "slow_requests": self.slow_log.total if self.slow_log else 0,
            "metrics_dump": self.obs.metrics.dump() if self.obs else None,
        }
        return {"shards": shards, "coordinator": coordinator, "totals": totals}

    def fleet_metrics(self):
        """One merged :class:`~repro.observability.metrics.MetricsRegistry`
        over the coordinator and every shard (histograms merged
        bucket-by-bucket)."""
        return merge_fleet_registry(self.merged_export())

    def _absorb_profile(
        self, index: int, dump: Dict[str, Any], pruned: int
    ) -> None:
        """Merge a worker's drained profile batch under its shard node."""
        state = self._profiles.get(index)
        if state is None:
            state = self._profiles[index] = {
                "node": ProfileNode(f"shard:{index}"),
                "mode": dump.get("mode", "exact"),
                "interval": dump.get("interval", 1),
                "total_roots": 0,
                "sampled_roots": 0,
                "pruned": 0,
            }
        state["node"].merge_dict(dump["tree"])
        state["total_roots"] += dump.get("total_roots", 0)
        state["sampled_roots"] += dump.get("sampled_roots", 0)
        if pruned:
            state["pruned"] += pruned
            self.profile_pruned += pruned

    def fleet_profile(self) -> Dict[str, Any]:
        """One merged spec-level profile over the whole fleet: a dump
        whose tree has one ``shard:N`` subtree per shard that reported
        work (same shape as a :class:`Profiler` dump, so every exporter
        and the ``repro profile`` renderer apply unchanged)."""
        children = []
        total = sampled = pruned = 0
        mode = self.profile or "exact"
        interval = self.profile_interval
        for index in sorted(self._profiles):
            state = self._profiles[index]
            children.append(state["node"].to_dict())
            total += state["total_roots"]
            sampled += state["sampled_roots"]
            pruned += state["pruned"]
        tree: Dict[str, Any] = {
            "name": "fleet",
            "calls": sampled,
            "seconds": sum(child["seconds"] for child in children),
        }
        if children:
            tree["children"] = children
        dump = {
            "mode": mode,
            "interval": interval,
            "total_roots": total,
            "sampled_roots": sampled,
            "scale": (total / sampled) if sampled else 1.0,
            "tree": tree,
        }
        if pruned:
            dump["pruned"] = pruned
        return dump

    def traces(self) -> List[Span]:
        """The merged request trace trees currently in the ring sink
        (oldest first); empty when tracing is off."""
        if self.obs is None or self.obs.ring is None:
            return []
        return request_traces(self.obs.ring.spans)

    def find_trace(self, trace_id: str) -> Optional[Span]:
        """The merged request tree with the given trace id, or None."""
        if self.obs is None or self.obs.ring is None:
            return None
        return trace_by_id(self.obs.ring.spans, trace_id)

    def slow_requests(self) -> List[Span]:
        """Merged traces captured by the slow-request log (empty when no
        threshold was configured)."""
        return list(self.slow_log.entries) if self.slow_log else []

    def snapshot_all(self) -> List[int]:
        """Force every shard to spool a fresh snapshot; returns the
        per-shard journal high-water marks."""
        return [
            self._call(shard, {"op": "snapshot"})["journal_seq"]
            for shard in range(self.shards)
        ]

    def ping_all(self) -> List[Dict[str, Any]]:
        return [
            self._call(shard, {"op": "ping"}) for shard in range(self.shards)
        ]

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for index, handle in enumerate(self._workers):
            if handle is None:
                continue
            try:
                send_frame(handle.sock, {"op": "shutdown"})
                recv_frame(handle.sock, timeout=2.0)
            except (WireError, OSError):
                pass
            try:
                handle.sock.close()
            except OSError:
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            self._workers[index] = None

    def __enter__(self) -> "ShardedCommunity":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
