"""The coordinator: routing, two-phase commit, crash recovery.

:class:`ShardedCommunity` is the client face of the sharded
object-community server.  It forks N shard worker processes (each
hosting a :class:`~repro.distributed.shardbase.ShardObjectBase` over the
full specification), routes every request to the owning shard by
identity hash (or placement pin), and exposes the society interface of
a single object base: ``create`` / ``occur`` / ``get`` /
``is_permitted`` / ``step`` / ``run_active`` plus merged state and
telemetry.

**Cross-shard synchronization sets** (Section 6's communicating
modules): when a worker reports ``needs_2pc`` -- its dry run captured
event calls into identities owned by other shards -- the coordinator
drives a two-phase protocol:

1. *Prepare fixpoint*: route the captured calls to their owners, ask
   every participating shard to dry-run its sub-unit
   (``prepare_group``), and fold newly discovered remote calls back in
   until the participant set is closed (bounded by
   ``MAX_2PC_ROUNDS``).
2. *Commit*: all shards voted yes -> each commits its sub-unit as one
   atomic local unit (``commit_group``).  *Abort*: any no-vote ->
   every participant journals a rollback tombstone (``abort_group``)
   and the original denial is re-raised with its original type.

The coordinator is single-threaded, so distributed units are serialized
-- there are no concurrent conflicting prepares and a yes-vote cannot
be invalidated before its commit arrives.

**Robustness**: every request has a timeout; on timeout, a broken pipe
or a dead worker the coordinator kills and respawns the shard (which
recovers from its spool -- snapshot + journal suffix replay) and
retries with exponential backoff.  Mutating requests carry a request id
the worker spools with the journal, so a retry after a crashed-but-
applied request is acknowledged instead of applied twice.
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datatypes.values import Value, from_python
from repro.diagnostics import CheckError, RuntimeSpecError, TrollError
from repro.distributed.shardbase import Partitioner
from repro.distributed.wire import WireError, recv_frame, send_frame
from repro.distributed.worker import error_class, worker_main
from repro.lang.checker import check_specification
from repro.lang.parser import parse_specification
from repro.runtime.compilespec import compile_specification
from repro.runtime.persistence import (
    _payload_from_json,
    _payload_to_json,
    value_to_json,
    value_from_json,
)

#: bound on the prepare fixpoint (each round can only add shards or
#: items; real calling chains close in one or two rounds)
MAX_2PC_ROUNDS = 8


class ShardUnavailable(TrollError):
    """A worker stayed unreachable through every retry and restart."""


class _WorkerHandle:
    __slots__ = ("index", "process", "sock")

    def __init__(self, index: int, process, sock: socket.socket):
        self.index = index
        self.process = process
        self.sock = sock


def _item_key(item: Dict[str, Any]) -> Tuple[str, str, str, str]:
    """Canonical dedup key of a wire item (or captured remote call)."""
    if item.get("type") == "create":
        return (
            item["class"],
            "create:" + json.dumps(item.get("identification"), sort_keys=True),
            item.get("event") or "",
            json.dumps(item.get("args") or [], sort_keys=True),
        )
    return (
        item["class"],
        json.dumps(item["key"], sort_keys=True),
        item["event"],
        json.dumps(item.get("args") or [], sort_keys=True),
    )


def merge_states(states: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard ``dump_state`` snapshots into one canonical
    snapshot (instances sorted by class and identity; class-object
    member sets unioned and sorted)."""
    instances: List[Dict[str, Any]] = []
    class_objects: Dict[str, List[Any]] = {}
    for state in states:
        instances.extend(state.get("instances", []))
        for name, members in state.get("class_objects", {}).items():
            class_objects.setdefault(name, []).extend(members)
    instances.sort(key=lambda r: (r["class"], json.dumps(r["key"], sort_keys=True)))
    first = states[0] if states else {}
    return {
        "format": first.get("format"),
        "permission_mode": first.get("permission_mode"),
        "instances": instances,
        "class_objects": {
            name: sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
            for name, members in class_objects.items()
        },
    }


def normalize_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """A single-process ``dump_state`` in the same canonical order as
    :func:`merge_states` output (the oracle side of equivalence tests)."""
    return merge_states([state])


class ShardedCommunity:
    """A society interface over N shard worker processes."""

    def __init__(
        self,
        spec: str,
        shards: int = 4,
        placement: Optional[Dict[str, int]] = None,
        spool_dir: Optional[str] = None,
        permission_mode: str = "incremental",
        check_constraints: bool = True,
        probe_cache: bool = True,
        snapshot_interval: int = 64,
        request_timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
        observe: bool = False,
        start: bool = True,
    ):
        if not isinstance(spec, str):
            raise CheckError(
                "ShardedCommunity needs specification text (workers "
                "re-parse it in their own processes)"
            )
        checked = check_specification(parse_specification(spec))
        checked.raise_if_errors()
        self.compiled = compile_specification(checked)
        self.spec_text = spec
        self.shards = shards
        self.partitioner = Partitioner(self.compiled, shards, placement)
        self.placement = dict(placement or {})
        self.spool_dir = spool_dir
        self.permission_mode = permission_mode
        self.check_constraints = check_constraints
        self.probe_cache = probe_cache
        self.snapshot_interval = snapshot_interval
        self.request_timeout = request_timeout
        self.retries = retries
        self.backoff = backoff
        self.observe = observe
        #: worker restarts observed (crash detection + recovery)
        self.restarts = 0
        self._workers: List[Optional[_WorkerHandle]] = [None] * shards
        self._rids = itertools.count(1)
        self._closed = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        for index in range(self.shards):
            if self._workers[index] is None:
                self._spawn(index)

    def _worker_config(self, index: int) -> Dict[str, Any]:
        return {
            "spec": self.spec_text,
            "shard_index": index,
            "shards": self.shards,
            "placement": self.placement,
            "spool_dir": self.spool_dir,
            "permission_mode": self.permission_mode,
            "check_constraints": self.check_constraints,
            "probe_cache": self.probe_cache,
            "snapshot_interval": self.snapshot_interval,
            "observe": self.observe,
        }

    def _spawn(self, index: int) -> _WorkerHandle:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        process = ctx.Process(
            target=worker_main,
            args=(child_sock, self._worker_config(index)),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child_sock.close()
        handle = _WorkerHandle(index, process, parent_sock)
        self._workers[index] = handle
        return handle

    def _restart(self, index: int) -> _WorkerHandle:
        """Kill whatever is left of a shard and respawn it; the fresh
        worker recovers from its spool (snapshot + journal replay)."""
        handle = self._workers[index]
        if handle is not None:
            try:
                handle.sock.close()
            except OSError:
                pass
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            self._workers[index] = None
        self.restarts += 1
        return self._spawn(index)

    def kill_worker(self, index: int) -> None:
        """Hard-kill one shard process (fault injection for tests); the
        next request to the shard triggers crash detection + restart."""
        handle = self._workers[index]
        if handle is not None and handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5)

    # ------------------------------------------------------------------
    # The request machinery: timeout, retry/backoff, restart
    # ------------------------------------------------------------------

    def _request(
        self, index: int, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        if self._closed:
            raise ShardUnavailable("the community has been closed")
        timeout = self.request_timeout if timeout is None else timeout
        attempts = self.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            handle = self._workers[index]
            if handle is None or not handle.process.is_alive():
                handle = self._restart(index)
            try:
                send_frame(handle.sock, message)
                return recv_frame(handle.sock, timeout=timeout)
            except (WireError, OSError) as exc:
                # Crash or hang.  A timed-out socket cannot be reused (a
                # late reply would desynchronize the framing), so the
                # shard is restarted either way; the worker's applied-id
                # spool makes retried mutations exactly-once.
                last_error = exc
                self._restart(index)
                if attempt + 1 < attempts:
                    time.sleep(self.backoff * (2 ** attempt))
        raise ShardUnavailable(
            f"shard {index} unreachable after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )

    def _call(
        self, index: int, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        response = self._request(index, message, timeout)
        if not response.get("ok"):
            raise error_class(response.get("error", "RuntimeSpecError"))(
                response.get("message", f"shard {index} error")
            )
        return response

    def _rid(self) -> str:
        return f"r{next(self._rids)}"

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _route(self, class_name: str, key) -> Tuple[Any, int]:
        if class_name not in self.compiled.classes:
            raise CheckError(f"unknown class {class_name!r}")
        payload = key.payload if isinstance(key, Value) else key
        return payload, self.partitioner.shard_of(class_name, payload)

    @staticmethod
    def _encode_args(args: Sequence[object]) -> List[Any]:
        return [value_to_json(from_python(a)) for a in args]

    # ------------------------------------------------------------------
    # The society interface
    # ------------------------------------------------------------------

    def create(
        self,
        class_name: str,
        identification: Optional[dict] = None,
        event: Optional[str] = None,
        args: Sequence[object] = (),
    ):
        """Create an instance on its owning shard; returns the identity
        payload (the routing key for later calls)."""
        if class_name not in self.compiled.classes:
            raise CheckError(f"unknown class {class_name!r}")
        compiled = self.compiled.classes[class_name]
        payload = self.partitioner.identity_payload(compiled, identification)
        shard = self.partitioner.shard_of(class_name, payload)
        item = {
            "type": "create",
            "class": class_name,
            "identification": {
                name: value_to_json(from_python(v))
                for name, v in (identification or {}).items()
            },
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="create", rid=self._rid())
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            self._run_2pc({shard: [item]}, response.get("remote", []))
        return payload

    def occur(
        self, class_name: str, key, event: str, args: Sequence[object] = ()
    ) -> None:
        """Drive one event occurrence (plus its synchronization set,
        across shards when event calling requires it)."""
        payload, shard = self._route(class_name, key)
        item = {
            "type": "occur",
            "class": class_name,
            "key": _payload_to_json(payload),
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="occur", rid=self._rid())
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            self._run_2pc({shard: [item]}, response.get("remote", []))

    def get(
        self, class_name: str, key, attribute: str, args: Sequence[object] = ()
    ) -> Value:
        payload, shard = self._route(class_name, key)
        response = self._call(
            shard,
            {
                "op": "get",
                "class": class_name,
                "key": _payload_to_json(payload),
                "attribute": attribute,
                "args": self._encode_args(args),
            },
        )
        return value_from_json(response["value"])

    def is_permitted(
        self, class_name: str, key, event: str, args: Sequence[object] = ()
    ) -> bool:
        payload, shard = self._route(class_name, key)
        item = {
            "type": "occur",
            "class": class_name,
            "key": _payload_to_json(payload),
            "event": event,
            "args": self._encode_args(args),
        }
        message = dict(item, op="is_permitted")
        message.pop("type")
        response = self._call(shard, message)
        if response.get("status") == "needs_2pc":
            ok, _failure, _groups = self._prepare_fixpoint(
                {shard: [item]}, response.get("remote", [])
            )
            return ok
        return bool(response.get("permitted"))

    def step(self) -> Optional[Tuple[str, Any, str]]:
        """Fire one enabled active event somewhere in the community;
        returns (class, key, event) or None at quiescence.  Shards are
        polled in index order; a cross-shard candidate whose distributed
        unit aborts is skipped this round."""
        for shard in range(self.shards):
            response = self._call(shard, {"op": "step", "rid": self._rid()})
            status = response.get("status")
            if status == "fired":
                return (
                    response["class"],
                    _payload_from_json(response["key"]),
                    response["event"],
                )
            if status == "needs_2pc_candidate":
                item = {
                    "type": "occur",
                    "class": response["class"],
                    "key": response["key"],
                    "event": response["event"],
                    "args": [],
                }
                try:
                    self._run_2pc({shard: [item]}, [])
                except RuntimeSpecError:
                    continue
                return (
                    response["class"],
                    _payload_from_json(response["key"]),
                    response["event"],
                )
        return None

    def run_active(self, max_steps: int = 100) -> List[Tuple[str, Any, str]]:
        fired: List[Tuple[str, Any, str]] = []
        for _ in range(max_steps):
            occurrence = self.step()
            if occurrence is None:
                break
            fired.append(occurrence)
        return fired

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def _prepare_fixpoint(
        self,
        groups: Dict[int, List[Dict[str, Any]]],
        remote: List[Dict[str, Any]],
    ) -> Tuple[bool, Optional[Dict[str, Any]], Dict[int, List[Dict[str, Any]]]]:
        """Close the participant set: route captured remote calls to
        their owners and re-prepare until no new items appear.  Returns
        (all_voted_yes, failing_response_or_None, groups)."""
        seen = {
            _item_key(item) for items in groups.values() for item in items
        }
        queue = list(remote)
        for _round in range(MAX_2PC_ROUNDS):
            for call in queue:
                key = _item_key(call)
                if key in seen:
                    continue
                seen.add(key)
                payload = _payload_from_json(call["key"])
                owner = self.partitioner.shard_of(call["class"], payload)
                groups.setdefault(owner, []).append(
                    {
                        "type": "occur",
                        "class": call["class"],
                        "key": call["key"],
                        "event": call["event"],
                        "args": call.get("args") or [],
                    }
                )
            queue = []
            for shard in sorted(groups):
                response = self._call(
                    shard, {"op": "prepare_group", "items": groups[shard]}
                )
                if not response.get("vote"):
                    return False, response, groups
                for call in response.get("remote", []):
                    if _item_key(call) not in seen:
                        queue.append(call)
            if not queue:
                return True, None, groups
        raise RuntimeSpecError(
            f"distributed synchronization set did not close within "
            f"{MAX_2PC_ROUNDS} prepare rounds (calling cycle across shards?)"
        )

    def _run_2pc(
        self,
        groups: Dict[int, List[Dict[str, Any]]],
        remote: List[Dict[str, Any]],
    ) -> None:
        ok, failure, groups = self._prepare_fixpoint(groups, remote)
        if not ok:
            reason = failure.get("error", "RuntimeSpecError")
            message = failure.get("message", "distributed unit aborted")
            for shard in sorted(groups):
                # Tombstones on every participant, best-effort: a shard
                # that cannot journal the abort has nothing committed.
                try:
                    self._call(
                        shard,
                        {
                            "op": "abort_group",
                            "items": groups[shard],
                            "reason": reason,
                            "message": message,
                        },
                    )
                except TrollError:
                    pass
            raise error_class(reason)(message)
        for shard in sorted(groups):
            # All voted yes, and the single-threaded coordinator admits
            # no conflicting unit in between -- commits cannot be denied.
            # A crash mid-round is covered by restart + the rid spool.
            self._call(
                shard,
                {"op": "commit_group", "rid": self._rid(), "items": groups[shard]},
            )

    # ------------------------------------------------------------------
    # Merged state and telemetry
    # ------------------------------------------------------------------

    def merged_state(self) -> Dict[str, Any]:
        """The community's full state as one canonical ``dump_state``
        snapshot (compare against :func:`normalize_state` of an oracle)."""
        states = [
            self._call(shard, {"op": "dump"})["state"]
            for shard in range(self.shards)
        ]
        return merge_states(states)

    def merged_export(self) -> Dict[str, Any]:
        """Per-shard counters plus community totals."""
        shards = [
            self._call(shard, {"op": "export"}) for shard in range(self.shards)
        ]
        totals = {
            "requests": sum(s.get("requests", 0) for s in shards),
            "commits": sum(s.get("commits", 0) for s in shards),
            "rollbacks": sum(s.get("rollbacks", 0) for s in shards),
            "journal_depth": sum(s.get("journal_depth", 0) for s in shards),
            "restarts": self.restarts,
        }
        return {"shards": shards, "totals": totals}

    def snapshot_all(self) -> List[int]:
        """Force every shard to spool a fresh snapshot; returns the
        per-shard journal high-water marks."""
        return [
            self._call(shard, {"op": "snapshot"})["journal_seq"]
            for shard in range(self.shards)
        ]

    def ping_all(self) -> List[Dict[str, Any]]:
        return [
            self._call(shard, {"op": "ping"}) for shard in range(self.shards)
        ]

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for index, handle in enumerate(self._workers):
            if handle is None:
                continue
            try:
                send_frame(handle.sock, {"op": "shutdown"})
                recv_frame(handle.sock, timeout=2.0)
            except (WireError, OSError):
                pass
            try:
                handle.sock.close()
            except OSError:
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            self._workers[index] = None

    def __enter__(self) -> "ShardedCommunity":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
