"""Co-simulation refinement checking.

The abstract class and its implementation live in one
:class:`~repro.runtime.objectbase.ObjectBase` (the Section 5.2 stack
declares EMPLOYEE, emp_rel, EMPL_IMPL and EMPL together).  The checker
creates one abstract instance and one concrete instance per tested
trace, then replays events against both sides in lock step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.diagnostics import RefinementError, RuntimeSpecError
from repro.interfaces.views import InterfaceView
from repro.runtime.objectbase import ObjectBase


@dataclass(frozen=True)
class EventProfile:
    """How the trace generator exercises one abstract event.

    Attributes:
        name: The abstract event name.
        args: A callable producing an argument list from the RNG (or a
            constant list).  Defaults to no arguments.
        kind: ``"birth"``, ``"death"`` or ``"normal"`` -- birth events
            start a trace, death events end it.
        weight: Relative pick probability for random traces.
        concrete_name: The event name on the interface, when it differs.
    """

    name: str
    args: Union[Sequence[object], Callable[[random.Random], Sequence[object]]] = ()
    kind: str = "normal"
    weight: float = 1.0
    concrete_name: Optional[str] = None

    def make_args(self, rng: random.Random) -> Sequence[object]:
        if callable(self.args):
            return self.args(rng)
        return self.args

    @property
    def interface_event(self) -> str:
        return self.concrete_name or self.name


@dataclass
class ConformanceReport:
    """The outcome of a conformance run."""

    ok: bool
    traces_run: int = 0
    events_run: int = 0
    accepted_events: int = 0
    rejected_events: int = 0
    counterexample: List[str] = field(default_factory=list)
    reason: str = ""

    def raise_if_failed(self) -> "ConformanceReport":
        if not self.ok:
            raise RefinementError(self.reason, counterexample=self.counterexample)
        return self


class RefinementChecker:
    """Checks that an implementation-through-interface refines an
    abstract class."""

    def __init__(
        self,
        system: ObjectBase,
        abstract_class: str,
        interface: str,
        observed_attributes: Optional[Sequence[str]] = None,
        attribute_map: Optional[Dict[str, str]] = None,
        identity_counter_start: int = 0,
    ):
        self.system = system
        self.abstract_class = abstract_class
        self.view = InterfaceView(system, interface)
        concrete_class = self.view._single_class()
        self.concrete_class = concrete_class
        #: abstract attribute -> interface attribute
        self.attribute_map = dict(attribute_map or {})
        if observed_attributes is None:
            abstract_attrs = set(
                system.checked.classes[abstract_class].attributes
            )
            observed_attributes = sorted(
                set(self.view.visible_attributes) & abstract_attrs
            )
        self.observed_attributes = list(observed_attributes)
        self._counter = identity_counter_start

    # ------------------------------------------------------------------
    # Identification plumbing
    # ------------------------------------------------------------------

    def _fresh_identification(self) -> Dict[str, object]:
        """Identification values for a fresh abstract/concrete pair.

        Both classes must share identification attribute names (true for
        the paper's EMPLOYEE / EMPL_IMPL); values are synthesised per
        sort.
        """
        self._counter += 1
        values: Dict[str, object] = {}
        info = self.system.checked.classes[self.abstract_class]
        import datetime

        for attr in info.id_attributes:
            sort_name = attr.sort.name if attr.sort is not None else "string"
            if sort_name == "string":
                values[attr.name] = f"subject_{self._counter}"
            elif sort_name in ("integer", "nat", "money", "real"):
                values[attr.name] = self._counter
            elif sort_name == "date":
                values[attr.name] = datetime.date(1960, 1, 1) + datetime.timedelta(
                    days=self._counter
                )
            else:
                values[attr.name] = f"subject_{self._counter}"
        return values

    # ------------------------------------------------------------------
    # Scripted traces
    # ------------------------------------------------------------------

    def check_trace(
        self, script: Sequence[Tuple[str, Sequence[object]]]
    ) -> ConformanceReport:
        """Replay one scripted trace on both sides.

        ``script`` is a list of (abstract event name, args); the first
        entry must be a birth event.
        """
        report = ConformanceReport(ok=True, traces_run=1)
        identification = self._fresh_identification()
        prefix: List[str] = []
        abstract = concrete = None
        profiles = {name: EventProfile(name=name) for name, _ in script}
        for event_name, args in script:
            profile = profiles[event_name]
            decl = self.system.checked.classes[self.abstract_class].all_events().get(
                event_name
            )
            kind = decl.kind if decl is not None else "normal"
            step = f"{event_name}({', '.join(map(str, args))})"
            prefix.append(step)
            report.events_run += 1
            if abstract is None:
                if kind != "birth":
                    report.ok = False
                    report.reason = f"trace must start with a birth event, got {step}"
                    report.counterexample = prefix
                    return report
                abstract = self.system.create(
                    self.abstract_class, identification, event_name, args
                )
                concrete = self.system.create(
                    self.concrete_class, identification, profile.interface_event, args
                )
                report.accepted_events += 1
            else:
                outcome = self._lockstep(
                    abstract, concrete, profile, args, prefix, report
                )
                if not outcome:
                    return report
            if not self._observations_agree(abstract, concrete, prefix, report):
                return report
        return report

    def _lockstep(self, abstract, concrete, profile, args, prefix, report) -> bool:
        abstract_ok = self.system.is_permitted(abstract, profile.name, args)
        concrete_ok = self.view.can_call(
            concrete.key, profile.interface_event, args
        )
        if abstract_ok != concrete_ok:
            report.ok = False
            report.reason = (
                f"acceptance disagreement at {prefix[-1]}: abstract "
                f"{'admits' if abstract_ok else 'rejects'}, implementation "
                f"{'admits' if concrete_ok else 'rejects'}"
            )
            report.counterexample = list(prefix)
            return False
        if not abstract_ok:
            report.rejected_events += 1
            prefix[-1] += " [rejected by both]"
            return True
        self.system.occur(abstract, profile.name, args)
        self.view.call(concrete.key, profile.interface_event, args)
        report.accepted_events += 1
        return True

    def _observations_agree(self, abstract, concrete, prefix, report) -> bool:
        if abstract is None or not abstract.alive or not concrete.alive:
            return True
        for attribute in self.observed_attributes:
            concrete_name = self.attribute_map.get(attribute, attribute)
            try:
                expected = abstract.observe(attribute)
            except RuntimeSpecError:
                continue
            try:
                actual = self.view.get(concrete.key, concrete_name)
            except RuntimeSpecError as exc:
                report.ok = False
                report.reason = (
                    f"observation {attribute!r} unavailable on the "
                    f"implementation after {prefix[-1]}: {exc.message}"
                )
                report.counterexample = list(prefix)
                return False
            if expected != actual:
                report.ok = False
                report.reason = (
                    f"observation disagreement on {attribute!r} after "
                    f"{prefix[-1]}: abstract {expected}, implementation {actual}"
                )
                report.counterexample = list(prefix)
                return False
        return True

    # ------------------------------------------------------------------
    # Random conformance
    # ------------------------------------------------------------------

    def random_conformance(
        self,
        profiles: Sequence[EventProfile],
        traces: int = 20,
        trace_length: int = 12,
        seed: int = 0,
    ) -> ConformanceReport:
        """Run seeded random traces drawn from ``profiles``.

        Each trace starts with the (unique) birth profile, then draws
        weighted events -- including events the abstract object may
        reject, exercising acceptance agreement on denials.
        """
        rng = random.Random(seed)
        births = [p for p in profiles if p.kind == "birth"]
        others = [p for p in profiles if p.kind != "birth"]
        if len(births) != 1:
            raise RefinementError(
                f"random_conformance expects exactly one birth profile, got "
                f"{len(births)}"
            )
        total = ConformanceReport(ok=True)
        for _ in range(traces):
            script: List[Tuple[str, Sequence[object]]] = [
                (births[0].name, list(births[0].make_args(rng)))
            ]
            for _ in range(trace_length):
                profile = rng.choices(others, weights=[p.weight for p in others])[0]
                script.append((profile.name, list(profile.make_args(rng))))
            report = self.check_trace(script)
            total.traces_run += report.traces_run
            total.events_run += report.events_run
            total.accepted_events += report.accepted_events
            total.rejected_events += report.rejected_events
            if not report.ok:
                total.ok = False
                total.reason = report.reason
                total.counterexample = report.counterexample
                return total
        return total
