"""Formal implementation and refinement checking (Section 5.2).

"To show the correctness of our implementation, we have to prove that
all properties of the original EMPLOYEE specification can be derived
from EMPL, too."  The paper defers the proof theory to [FSMS90, FM91];
this package provides the executable counterpart: a *co-simulation*
conformance check between the abstract specification and the concrete
realization accessed through its hiding interface.

Conformance over a tested trace set means, step by step:

* **acceptance agreement** -- an event is admitted by the abstract
  object iff the interface admits it on the implementation;
* **observation agreement** -- after every applied event, the observable
  attributes (the interface's visible attributes) coincide.

:class:`RefinementChecker` drives scripted traces and seeded random
traces; a failure raises (or returns) a
:class:`~repro.diagnostics.RefinementError` carrying the counterexample
prefix.
"""

from repro.refinement.checker import (
    ConformanceReport,
    EventProfile,
    RefinementChecker,
)

__all__ = ["ConformanceReport", "EventProfile", "RefinementChecker"]
