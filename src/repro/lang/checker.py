"""Static semantics: name resolution and (weak) sort checking.

:func:`check_specification` validates a parsed
:class:`~repro.lang.ast.Specification` and produces a
:class:`CheckedSpecification` -- the resolved symbol tables the runtime
compiler works from.

Checks performed:

* uniqueness of class/object/interface names and of member names within
  a signature;
* resolution of ``view of`` bases (with cycle detection), component
  targets, ``inheriting`` bases, interface encapsulations;
* signature inheritance: a view/phase class inherits the base's
  attributes, events and identification (Section 4: "inheritance of
  templates ... means the reuse of specification texts");
* rule well-formedness: every event referenced by a valuation,
  permission or calling rule is declared (calling-rule *triggers* that
  are undeclared are registered as implicitly-declared derived events,
  matching the ``ChangeSalary`` usage in the ``emp_rel`` listing, with a
  note emitted); arities match; valuation targets are non-derived
  attributes; derivation rules target derived attributes;
* free-variable discipline: every variable in a rule body is bound by
  the rule's ``variables`` clause, by an event parameter, by a
  quantifier, or names an attribute/component in scope;
* weak sort checking of rule bodies (mismatched valuation sorts and
  ill-sorted operator applications are reported; ``any`` is permissive,
  reflecting the "weak typing" this Python reproduction accepts).

The checker never mutates the AST; all results live in the returned
tables.  Errors are collected in a
:class:`~repro.diagnostics.DiagnosticBag` -- callers decide whether to
raise (:meth:`CheckedSpecification.raise_if_errors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.datatypes.sorts import ANY, BOOL, IdSort, Sort
from repro.datatypes.operations import BUILTIN_OPERATIONS
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Exists,
    Forall,
    ListCons,
    Lit,
    QueryOp,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.diagnostics import DiagnosticBag
from repro.lang import ast
from repro.temporal.formulas import (
    After,
    Always,
    AndF,
    ExistsF,
    ForallF,
    Formula,
    ImpliesF,
    NotF,
    OrF,
    Since,
    Sometime,
    StateProp,
)


@dataclass
class ClassInfo:
    """The resolved signature of one object class or single object."""

    name: str
    kind: str  # "class" or "object"
    decl: object
    base: Optional[str] = None
    id_attributes: Tuple[ast.AttributeDecl, ...] = ()
    attributes: Dict[str, ast.AttributeDecl] = field(default_factory=dict)
    events: Dict[str, ast.EventDecl] = field(default_factory=dict)
    components: Dict[str, ast.ComponentDecl] = field(default_factory=dict)
    inheriting: Dict[str, str] = field(default_factory=dict)
    template: ast.TemplateDecl = field(default_factory=ast.TemplateDecl)
    #: Event names referenced as calling triggers without a declaration,
    #: registered as implicit derived events.
    implicit_events: Dict[str, ast.EventDecl] = field(default_factory=dict)

    @property
    def identity_sort(self) -> IdSort:
        return IdSort(name=f"|{self.name}|", class_name=self.name)

    def all_events(self) -> Dict[str, ast.EventDecl]:
        merged = dict(self.events)
        merged.update(self.implicit_events)
        return merged

    def birth_events(self) -> List[ast.EventDecl]:
        return [e for e in self.events.values() if e.kind == "birth"]

    def death_events(self) -> List[ast.EventDecl]:
        return [e for e in self.events.values() if e.kind == "death"]


@dataclass
class InterfaceInfo:
    """The resolved signature of one interface class."""

    name: str
    decl: ast.InterfaceClassDecl
    #: alias -> encapsulated class name (single encapsulation uses the
    #: class name itself as alias).
    encapsulating: Dict[str, str] = field(default_factory=dict)
    attributes: Dict[str, ast.AttributeDecl] = field(default_factory=dict)
    events: Dict[str, ast.EventDecl] = field(default_factory=dict)

    @property
    def is_join(self) -> bool:
        return len(self.encapsulating) > 1


@dataclass
class CheckedSpecification:
    """A checked specification: AST plus resolved symbol tables."""

    spec: ast.Specification
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    interfaces: Dict[str, InterfaceInfo] = field(default_factory=dict)
    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)

    def raise_if_errors(self) -> "CheckedSpecification":
        self.diagnostics.raise_if_errors()
        return self

    def class_info(self, name: str) -> ClassInfo:
        return self.classes[name]


class _Scope:
    """A static scope: variable/attribute names with (optional) sorts."""

    def __init__(self, parent: Optional["_Scope"] = None, permissive: bool = False):
        self.parent = parent
        self.names: Dict[str, Sort] = {}
        #: A permissive scope resolves any name to ``any`` -- used inside
        #: ``select[...]`` parameters whose source sort is unknown.
        self.permissive = permissive

    def declare(self, name: str, sort: Sort) -> None:
        self.names[name] = sort

    def sort_of(self, name: str) -> Optional[Sort]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            if scope.permissive:
                return ANY
            scope = scope.parent
        return None

    def child(self, permissive: bool = False) -> "_Scope":
        return _Scope(self, permissive=permissive)


class Checker:
    """Single-use checker over one specification."""

    def __init__(self, spec: ast.Specification):
        self.spec = spec
        self.out = CheckedSpecification(spec=spec)
        self.bag = self.out.diagnostics

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> CheckedSpecification:
        self._collect_declarations()
        self._resolve_views()
        for info in self.out.classes.values():
            self._check_class(info)
        for decl in self.spec.interfaces:
            self._check_interface(decl)
        for block in self.spec.global_interactions:
            self._check_global_interactions(block)
        return self.out

    # ------------------------------------------------------------------
    # Declaration collection
    # ------------------------------------------------------------------

    def _collect_declarations(self) -> None:
        for decl in self.spec.object_classes:
            if decl.name in self.out.classes:
                self.bag.error(f"duplicate class name {decl.name!r}", decl.position)
                continue
            self.out.classes[decl.name] = self._class_info(decl, "class")
        for decl in self.spec.objects:
            if decl.name in self.out.classes:
                self.bag.error(f"duplicate object name {decl.name!r}", decl.position)
                continue
            info = ClassInfo(
                name=decl.name, kind="object", decl=decl, template=decl.template
            )
            self._fill_signature(info, decl.template)
            self.out.classes[decl.name] = info

    def _class_info(self, decl: ast.ObjectClassDecl, kind: str) -> ClassInfo:
        info = ClassInfo(
            name=decl.name,
            kind=kind,
            decl=decl,
            base=decl.view_of,
            id_attributes=decl.identification.attributes,
            template=decl.template,
        )
        for attr in decl.identification.attributes:
            info.attributes[attr.name] = attr
        self._fill_signature(info, decl.template)
        return info

    def _fill_signature(self, info: ClassInfo, template: ast.TemplateDecl) -> None:
        for attr in template.attributes:
            if attr.name in info.attributes:
                self.bag.error(
                    f"duplicate attribute {attr.name!r} in {info.name}", attr.position
                )
            info.attributes[attr.name] = attr
        for comp in template.components:
            if comp.name in info.attributes or comp.name in info.components:
                self.bag.error(
                    f"duplicate member {comp.name!r} in {info.name}", comp.position
                )
            info.components[comp.name] = comp
        for event in template.events:
            if event.name in info.events:
                self.bag.error(
                    f"duplicate event {event.name!r} in {info.name}", event.position
                )
            info.events[event.name] = event
        for inh in template.inheriting:
            info.inheriting[inh.alias] = inh.base_object

    # ------------------------------------------------------------------
    # View (specialization / phase) resolution
    # ------------------------------------------------------------------

    def _resolve_views(self) -> None:
        for info in list(self.out.classes.values()):
            if info.base is None:
                continue
            chain = self._base_chain(info)
            if chain is None:
                continue
            for base_name in chain:
                base = self.out.classes[base_name]
                for name, attr in base.attributes.items():
                    info.attributes.setdefault(name, attr)
                for name, event in base.events.items():
                    existing = info.events.get(name)
                    if existing is None:
                        # Inherited events lose their birth/death role in
                        # the view unless re-declared: a phase is not
                        # born/killed by the base's birth/death.
                        inherited = ast.EventDecl(
                            position=event.position,
                            name=event.name,
                            param_sorts=event.param_sorts,
                            kind="normal" if event.kind in ("birth", "death") else event.kind,
                            derived=event.derived,
                            active=event.active,
                            binding=ast.QualifiedEventName(
                                object_name=base_name, event_name=event.name
                            ),
                        )
                        info.events[name] = inherited
                for name, comp in base.components.items():
                    info.components.setdefault(name, comp)
                if not info.id_attributes:
                    info.id_attributes = base.id_attributes
                    for attr in base.id_attributes:
                        info.attributes.setdefault(attr.name, attr)

    def _base_chain(self, info: ClassInfo) -> Optional[List[str]]:
        """The view-of chain from direct base to root, or None on error."""
        chain: List[str] = []
        seen: Set[str] = {info.name}
        current = info.base
        while current is not None:
            if current not in self.out.classes:
                self.bag.error(
                    f"{info.name}: unknown base class {current!r} in 'view of'",
                    getattr(info.decl, "position", None),
                )
                return None
            if current in seen:
                self.bag.error(
                    f"cyclic 'view of' chain through {current!r}",
                    getattr(info.decl, "position", None),
                )
                return None
            seen.add(current)
            chain.append(current)
            current = self.out.classes[current].base
        return chain

    # ------------------------------------------------------------------
    # Class body checks
    # ------------------------------------------------------------------

    def _check_class(self, info: ClassInfo) -> None:
        template = info.template
        for comp in template.components:
            if comp.target not in self.out.classes:
                self.bag.error(
                    f"{info.name}: unknown component class {comp.target!r}",
                    comp.position,
                )
        for alias, base in info.inheriting.items():
            if base not in self.out.classes:
                self.bag.error(
                    f"{info.name}: unknown base object {base!r} in 'inheriting'",
                    template.position,
                )
        if info.kind == "class" and not info.id_attributes and info.base is None:
            self.bag.warning(
                f"{info.name}: object class without identification attributes",
                getattr(info.decl, "position", None),
            )

        # Triggers of calling rules may be implicitly-declared derived
        # events (the emp_rel ChangeSalary idiom); register them first so
        # later references resolve.
        for rule in template.interactions:
            name = rule.trigger.name
            if rule.trigger.qualifier is None and name not in info.all_events():
                scope = self._rule_scope(info, rule.variables)
                param_sorts = tuple(
                    self._infer(arg, scope, info) for arg in rule.trigger.args
                )
                info.implicit_events[name] = ast.EventDecl(
                    position=rule.position,
                    name=name,
                    param_sorts=param_sorts,
                    kind="normal",
                    derived=True,
                )
                self.bag.note(
                    f"{info.name}: calling trigger {name!r} registered as an "
                    "implicitly-declared derived event",
                    rule.position,
                )

        for rule in template.valuation:
            self._check_valuation_rule(info, rule)
        for rule in template.permissions:
            self._check_permission_rule(info, rule)
        for constraint in template.constraints:
            scope = self._rule_scope(info, ())
            self._check_term(constraint.formula, scope, info, f"{info.name} constraint")
        for attr in info.attributes.values():
            if attr.initial is not None:
                scope = self._rule_scope(info, ())
                initial_sort = self._check_term(
                    attr.initial, scope, info, f"{info.name} initially"
                )
                if (
                    attr.sort is not None
                    and initial_sort is not None
                    and not initial_sort.is_compatible_with(attr.sort)
                ):
                    self.bag.error(
                        f"{info.name}: initial value of {attr.name!r} has sort "
                        f"{initial_sort}, attribute declared {attr.sort}",
                        attr.position,
                    )
                if attr.derived:
                    self.bag.error(
                        f"{info.name}: derived attribute {attr.name!r} cannot "
                        "have an initial value",
                        attr.position,
                    )
        for rule in template.derivation_rules:
            self._check_derivation_rule(info, rule)
        for rule in template.interactions:
            self._check_calling_rule(info, rule)
        for pattern in template.behavior_patterns:
            unknown = sorted(set(pattern.alphabet()) - set(info.all_events()))
            if unknown:
                self.bag.error(
                    f"{info.name}: behaviour pattern references unknown "
                    f"event(s) {unknown}",
                    getattr(info.decl, "position", None),
                )
        for obligation in template.obligations:
            if obligation.event not in info.all_events():
                self.bag.error(
                    f"{info.name}: obligation references unknown event "
                    f"{obligation.event!r}",
                    obligation.position,
                )
            elif not info.death_events():
                self.bag.warning(
                    f"{info.name}: obligations without a death event are "
                    "never enforced",
                    obligation.position,
                )

    def _rule_scope(
        self, info: ClassInfo, variables: Tuple[ast.VariableDecl, ...]
    ) -> _Scope:
        scope = _Scope()
        for attr in info.attributes.values():
            scope.declare(attr.name, attr.sort or ANY)
        for comp in info.components.values():
            target_sort: Sort = IdSort(
                name=f"|{comp.target}|", class_name=comp.target
            )
            if comp.container == "list":
                from repro.datatypes.sorts import ListSort

                target_sort = ListSort(name="list", element=target_sort)
            elif comp.container == "set":
                from repro.datatypes.sorts import SetSort

                target_sort = SetSort(name="set", element=target_sort)
            scope.declare(comp.name, target_sort)
        for alias in info.inheriting:
            scope.declare(alias, ANY)
        for var in variables:
            scope.declare(var.name, var.sort)
        return scope

    def _bind_event_args(
        self, info: ClassInfo, event: ast.EventRef, scope: _Scope, context: str
    ) -> None:
        """Declare `Var` arguments of a rule's event as binders."""
        decl = info.all_events().get(event.name) if event.qualifier is None else None
        for index, arg in enumerate(event.args):
            if isinstance(arg, Var) and scope.sort_of(arg.name) is None:
                sort = ANY
                if decl is not None and index < len(decl.param_sorts):
                    sort = decl.param_sorts[index]
                scope.declare(arg.name, sort)

    def _check_event_ref(
        self, info: ClassInfo, event: ast.EventRef, scope: _Scope, context: str
    ) -> None:
        if event.qualifier is None:
            decl = info.all_events().get(event.name)
            if decl is None:
                self.bag.error(
                    f"{context}: unknown event {event.name!r}", event.position
                )
                return
            if len(event.args) != len(decl.param_sorts):
                self.bag.error(
                    f"{context}: event {event.name!r} expects "
                    f"{len(decl.param_sorts)} argument(s), got {len(event.args)}",
                    event.position,
                )
            for arg in event.args:
                self._check_term(arg, scope, info, context)
            return
        # Qualified: resolve the qualifier.
        qualifier = event.qualifier
        target_info: Optional[ClassInfo] = None
        if qualifier.name == "self":
            target_info = info
        elif qualifier.name in info.components:
            target_info = self.out.classes.get(info.components[qualifier.name].target)
        elif qualifier.name in info.inheriting:
            target_info = self.out.classes.get(info.inheriting[qualifier.name])
        elif qualifier.name in self.out.classes:
            target_info = self.out.classes[qualifier.name]
            if qualifier.key is not None:
                self._check_term(qualifier.key, scope, info, context)
        else:
            self.bag.error(
                f"{context}: cannot resolve qualifier {qualifier.name!r}",
                event.position,
            )
            return
        if target_info is None:
            return  # unknown component class already reported
        decl = target_info.all_events().get(event.name)
        if decl is None:
            self.bag.error(
                f"{context}: {target_info.name} has no event {event.name!r}",
                event.position,
            )
            return
        if len(event.args) != len(decl.param_sorts):
            self.bag.error(
                f"{context}: event {target_info.name}.{event.name!r} expects "
                f"{len(decl.param_sorts)} argument(s), got {len(event.args)}",
                event.position,
            )
        for arg in event.args:
            self._check_term(arg, scope, info, context)

    def _check_valuation_rule(self, info: ClassInfo, rule: ast.ValuationRule) -> None:
        context = f"{info.name} valuation"
        scope = self._rule_scope(info, rule.variables)
        self._bind_event_args(info, rule.event, scope, context)
        self._check_event_ref(info, rule.event, scope, context)
        attr = info.attributes.get(rule.attribute)
        if attr is None and rule.attribute in info.components:
            pass  # valuation may manage a component slot (TheCompany's depts)
        elif attr is None:
            self.bag.error(
                f"{context}: unknown attribute {rule.attribute!r}", rule.position
            )
        else:
            if attr.constant:
                event_decl = info.all_events().get(rule.event.name)
                if event_decl is not None and event_decl.kind != "birth":
                    self.bag.error(
                        f"{context}: constant attribute {rule.attribute!r} "
                        "may only be set by a birth event",
                        rule.position,
                    )
            if attr.derived:
                self.bag.error(
                    f"{context}: derived attribute {rule.attribute!r} cannot be "
                    "the target of a valuation rule",
                    rule.position,
                )
            if len(rule.attribute_args) != len(attr.param_sorts):
                self.bag.error(
                    f"{context}: attribute {rule.attribute!r} expects "
                    f"{len(attr.param_sorts)} parameter(s), got "
                    f"{len(rule.attribute_args)}",
                    rule.position,
                )
        if rule.guard is not None:
            self._check_term(rule.guard, scope, info, context)
        expr_sort = self._check_term(rule.expr, scope, info, context)
        if (
            attr is not None
            and attr.sort is not None
            and expr_sort is not None
            and not expr_sort.is_compatible_with(attr.sort)
        ):
            self.bag.error(
                f"{context}: rule for {rule.attribute!r} has sort {expr_sort}, "
                f"attribute declared {attr.sort}",
                rule.position,
            )

    def _check_permission_rule(self, info: ClassInfo, rule: ast.PermissionRule) -> None:
        context = f"{info.name} permission"
        scope = self._rule_scope(info, rule.variables)
        self._bind_event_args(info, rule.event, scope, context)
        self._check_event_ref(info, rule.event, scope, context)
        self._check_formula(rule.formula, scope, info, context)

    def _check_derivation_rule(self, info: ClassInfo, rule: ast.DerivationRule) -> None:
        context = f"{info.name} derivation"
        attr = info.attributes.get(rule.attribute)
        if attr is None:
            self.bag.error(
                f"{context}: unknown attribute {rule.attribute!r}", rule.position
            )
        elif not attr.derived:
            self.bag.error(
                f"{context}: attribute {rule.attribute!r} is not declared derived",
                rule.position,
            )
        scope = self._rule_scope(info, ())
        for param in rule.params:
            scope.declare(param, ANY)
        self._check_term(rule.expr, scope, info, context)

    def _check_calling_rule(self, info: ClassInfo, rule: ast.CallingRule) -> None:
        context = f"{info.name} interaction"
        scope = self._rule_scope(info, rule.variables)
        self._bind_event_args(info, rule.trigger, scope, context)
        self._check_event_ref(info, rule.trigger, scope, context)
        if rule.guard is not None:
            self._check_term(rule.guard, scope, info, context)
        for target in rule.targets:
            self._check_event_ref(info, target, scope, context)

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------

    def _check_interface(self, decl: ast.InterfaceClassDecl) -> None:
        if decl.name in self.out.interfaces or decl.name in self.out.classes:
            self.bag.error(f"duplicate interface name {decl.name!r}", decl.position)
            return
        info = InterfaceInfo(name=decl.name, decl=decl)
        for enc in decl.encapsulating:
            if enc.class_name not in self.out.classes:
                self.bag.error(
                    f"{decl.name}: unknown encapsulated class {enc.class_name!r}",
                    enc.position,
                )
                continue
            alias = enc.alias or enc.class_name
            if alias in info.encapsulating:
                self.bag.error(
                    f"{decl.name}: duplicate encapsulation alias {alias!r}",
                    enc.position,
                )
            info.encapsulating[alias] = enc.class_name
        bases = [
            self.out.classes[c]
            for c in info.encapsulating.values()
            if c in self.out.classes
        ]

        derived_rule_names = {r.attribute for r in decl.derivation_rules}
        for attr in decl.attributes:
            info.attributes[attr.name] = attr
            hidden_in_base = any(
                attr.name in b.attributes and b.attributes[attr.name].hidden
                for b in bases
            )
            if hidden_in_base and not attr.derived:
                self.bag.error(
                    f"{decl.name}: attribute {attr.name!r} is hidden in the "
                    "encapsulated class and cannot be projected",
                    attr.position,
                )
            if attr.derived:
                if attr.name not in derived_rule_names:
                    self.bag.error(
                        f"{decl.name}: derived attribute {attr.name!r} has no "
                        "derivation rule",
                        attr.position,
                    )
                continue
            if not any(attr.name in b.attributes for b in bases) and not any(
                attr.name in (a.name for a in b.id_attributes) for b in bases
            ):
                if not info.is_join:
                    self.bag.error(
                        f"{decl.name}: attribute {attr.name!r} not found in "
                        "the encapsulated class",
                        attr.position,
                    )
                elif attr.name not in derived_rule_names:
                    self.bag.error(
                        f"{decl.name}: join-view attribute {attr.name!r} needs "
                        "a derivation rule",
                        attr.position,
                    )

        calling_triggers = {r.trigger.name for r in decl.callings}
        for event in decl.events:
            info.events[event.name] = event
            if any(
                event.name in b.all_events() and b.all_events()[event.name].hidden
                for b in bases
            ) and not event.derived:
                self.bag.error(
                    f"{decl.name}: event {event.name!r} is hidden in the "
                    "encapsulated class and cannot be projected",
                    event.position,
                )
            if event.derived:
                if event.name not in calling_triggers:
                    self.bag.error(
                        f"{decl.name}: derived event {event.name!r} has no "
                        "calling rule",
                        event.position,
                    )
                continue
            if not any(event.name in b.all_events() for b in bases):
                self.bag.error(
                    f"{decl.name}: event {event.name!r} not found in the "
                    "encapsulated class(es)",
                    event.position,
                )

        # Selection and derivation bodies: names resolve against the
        # union of base attributes, the aliases, and SELF.
        scope = _Scope()
        for base in bases:
            for attr_name, attr in base.attributes.items():
                scope.declare(attr_name, attr.sort or ANY)
        for alias, class_name in info.encapsulating.items():
            scope.declare(alias, IdSort(name=f"|{class_name}|", class_name=class_name))
        base_info = bases[0] if bases else None
        if decl.selection is not None and base_info is not None:
            self._check_term(decl.selection, scope, base_info, f"{decl.name} selection")
        for rule in decl.derivation_rules:
            rule_scope = scope.child()
            for param in rule.params:
                rule_scope.declare(param, ANY)
            if base_info is not None:
                self._check_term(
                    rule.expr, rule_scope, base_info, f"{decl.name} derivation"
                )
        for rule in decl.callings:
            if base_info is not None:
                rule_scope = scope.child()
                for var in rule.variables:
                    rule_scope.declare(var.name, var.sort)
                self._bind_event_args(base_info, rule.trigger, rule_scope, decl.name)
                for target in rule.targets:
                    self._check_event_ref(base_info, target, rule_scope, decl.name)

        self.out.interfaces[decl.name] = info

    # ------------------------------------------------------------------
    # Global interactions
    # ------------------------------------------------------------------

    def _check_global_interactions(self, block: ast.GlobalInteractionsDecl) -> None:
        context = "global interactions"
        scope = _Scope()
        for var in block.variables:
            scope.declare(var.name, var.sort)
        for rule in block.rules:
            for ref in (rule.trigger,) + rule.targets:
                if ref.qualifier is None:
                    self.bag.error(
                        f"{context}: event reference {ref.name!r} must be "
                        "class-qualified",
                        ref.position,
                    )
                    continue
                target_info = self.out.classes.get(ref.qualifier.name)
                if target_info is None:
                    self.bag.error(
                        f"{context}: unknown class {ref.qualifier.name!r}",
                        ref.position,
                    )
                    continue
                decl = target_info.all_events().get(ref.name)
                if decl is None:
                    self.bag.error(
                        f"{context}: {target_info.name} has no event {ref.name!r}",
                        ref.position,
                    )
                    continue
                if len(ref.args) != len(decl.param_sorts):
                    self.bag.error(
                        f"{context}: event {target_info.name}.{ref.name!r} "
                        f"expects {len(decl.param_sorts)} argument(s), got "
                        f"{len(ref.args)}",
                        ref.position,
                    )

    # ------------------------------------------------------------------
    # Term / formula checking
    # ------------------------------------------------------------------

    def _check_term(
        self, term: Term, scope: _Scope, info: ClassInfo, context: str
    ) -> Optional[Sort]:
        sort = self._infer(term, scope, info, context)
        return sort

    def _infer(
        self,
        term: Term,
        scope: _Scope,
        info: ClassInfo,
        context: str = "",
    ) -> Sort:
        if isinstance(term, Lit):
            return term.value.sort
        if isinstance(term, Var):
            sort = scope.sort_of(term.name)
            if sort is None:
                self.bag.error(
                    f"{context}: unbound name {term.name!r}", term.position
                )
                return ANY
            return sort
        if isinstance(term, SelfExpr):
            return info.identity_sort
        if isinstance(term, Apply):
            arg_sorts = [self._infer(a, scope, info, context) for a in term.args]
            op = BUILTIN_OPERATIONS.get(term.op)
            if op is None:
                attr = info.attributes.get(term.op)
                if attr is not None and attr.param_sorts:
                    if len(term.args) != len(attr.param_sorts):
                        self.bag.error(
                            f"{context}: attribute {term.op!r} expects "
                            f"{len(attr.param_sorts)} parameter(s), got "
                            f"{len(term.args)}",
                            term.position,
                        )
                    return attr.sort or ANY
                self.bag.error(
                    f"{context}: unknown operation {term.op!r}", term.position
                )
                return ANY
            if len(term.args) != op.arity:
                self.bag.error(
                    f"{context}: operation {term.op!r} expects {op.arity} "
                    f"argument(s), got {len(term.args)}",
                    term.position,
                )
                return ANY
            try:
                return op.infer(arg_sorts)
            except Exception:
                self.bag.error(
                    f"{context}: ill-sorted application of {term.op!r} to "
                    f"({', '.join(str(s) for s in arg_sorts)})",
                    term.position,
                )
                return ANY
        if isinstance(term, TupleCons):
            for _, sub in term.items:
                self._infer(sub, scope, info, context)
            return ANY
        if isinstance(term, (SetCons, ListCons)):
            for sub in term.items:
                self._infer(sub, scope, info, context)
            from repro.datatypes.sorts import ListSort, SetSort

            cls = SetSort if isinstance(term, SetCons) else ListSort
            name = "set" if isinstance(term, SetCons) else "list"
            element = (
                self._infer(term.items[0], scope, info, context) if term.items else ANY
            )
            return cls(name=name, element=element)
        if isinstance(term, AttributeAccess):
            obj_sort = self._infer(term.obj, scope, info, context)
            for arg in term.args:
                self._infer(arg, scope, info, context)
            if isinstance(obj_sort, IdSort):
                target = self.out.classes.get(obj_sort.class_name)
                if target is not None:
                    if term.attribute == "surrogate":
                        return obj_sort
                    attr = target.attributes.get(term.attribute)
                    if attr is None and term.attribute not in target.components:
                        self.bag.error(
                            f"{context}: {obj_sort.class_name} has no attribute "
                            f"{term.attribute!r}",
                            term.position,
                        )
                        return ANY
                    if attr is not None:
                        return attr.sort or ANY
            from repro.datatypes.sorts import TupleSort

            if isinstance(obj_sort, TupleSort):
                field_sort = obj_sort.field_sort(term.attribute)
                if field_sort is None:
                    self.bag.error(
                        f"{context}: tuple has no field {term.attribute!r}",
                        term.position,
                    )
                    return ANY
                return field_sort
            return ANY
        if isinstance(term, QueryOp):
            source_sort = self._infer(term.source, scope, info, context)
            if isinstance(term.param, Term):
                inner = scope.child()
                from repro.datatypes.sorts import ListSort, SetSort, TupleSort

                if isinstance(source_sort, (SetSort, ListSort)) and isinstance(
                    source_sort.element, TupleSort
                ):
                    for field_name, field_sort in source_sort.element.fields:
                        inner.declare(field_name, field_sort)
                else:
                    # Unknown element structure: names inside the filter
                    # cannot be resolved statically.
                    inner = scope.child(permissive=True)
                    inner.declare("it", ANY)
                self._infer(term.param, inner, info, context)
            return source_sort
        if isinstance(term, (Forall, Exists)):
            inner = scope.child()
            for name, sort in term.variables:
                inner.declare(name, sort)
            self._infer(term.body, inner, info, context)
            return BOOL
        return ANY

    def _check_formula(
        self, formula: Formula, scope: _Scope, info: ClassInfo, context: str
    ) -> None:
        if isinstance(formula, StateProp):
            self._check_term(formula.term, scope, info, context)
            return
        if isinstance(formula, After):
            pattern = formula.pattern
            decl = info.all_events().get(pattern.event)
            if decl is None:
                self.bag.error(
                    f"{context}: after(...) references unknown event "
                    f"{pattern.event!r}",
                    formula.position,
                )
            elif not pattern.match_any_args and len(pattern.args) != len(
                decl.param_sorts
            ):
                self.bag.error(
                    f"{context}: after({pattern.event}) arity mismatch",
                    formula.position,
                )
            for arg in pattern.args:
                self._check_term(arg, scope, info, context)
            return
        if isinstance(formula, (Sometime, Always, NotF)):
            self._check_formula(formula.body, scope, info, context)
            return
        if isinstance(formula, Since):
            self._check_formula(formula.hold, scope, info, context)
            self._check_formula(formula.anchor, scope, info, context)
            return
        if isinstance(formula, (AndF, OrF, ImpliesF)):
            self._check_formula(formula.left, scope, info, context)
            self._check_formula(formula.right, scope, info, context)
            return
        if isinstance(formula, (ForallF, ExistsF)):
            inner = scope.child()
            for name, sort in formula.variables:
                inner.declare(name, sort)
            self._check_formula(formula.body, inner, info, context)
            return


def check_specification(spec: ast.Specification) -> CheckedSpecification:
    """Check ``spec`` and return the resolved tables (never raises for
    spec errors; inspect/raise via the returned diagnostics)."""
    return Checker(spec).run()
