"""Pretty-printer (unparser) for TROLL specifications.

Renders an AST back into concrete syntax that the parser accepts and
that parses to an equal AST -- the round-trip property the test suite
checks.  Useful for generated specifications
(:mod:`repro.relational.generate` builds text directly; tools composing
ASTs can print instead) and for normalising user input.
"""

from __future__ import annotations

from typing import List

from repro.datatypes.sorts import ListSort, MapSort, SetSort, Sort, TupleSort
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Exists,
    Forall,
    ListCons,
    Lit,
    QueryOp,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.lang import ast
from repro.temporal.formulas import (
    After,
    Always,
    AndF,
    ExistsF,
    ForallF,
    Formula,
    ImpliesF,
    NotF,
    OrF,
    Since,
    Sometime,
    StateProp,
)


def print_sort(sort: Sort) -> str:
    """Concrete syntax of a sort."""
    if isinstance(sort, SetSort):
        return f"set({print_sort(sort.element)})"
    if isinstance(sort, ListSort):
        return f"list({print_sort(sort.element)})"
    if isinstance(sort, MapSort):
        return f"map({print_sort(sort.key)}, {print_sort(sort.value)})"
    if isinstance(sort, TupleSort):
        inner = ", ".join(f"{n}: {print_sort(s)}" for n, s in sort.fields)
        return f"tuple({inner})"
    from repro.datatypes.sorts import IdSort

    if isinstance(sort, IdSort):
        return f"|{sort.class_name}|"
    return sort.name


#: operator precedence levels for parenthesisation (higher binds tighter)
_PRECEDENCE = {
    "implies": 1, "or": 2, "and": 3, "not": 4,
    "=": 5, "<>": 5, "<": 5, "<=": 5, ">": 5, ">=": 5, "in": 5,
    "+": 6, "-": 6, "*": 7, "/": 7,
}

_INFIX = {"=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"}


def print_term(term: Term, parent_level: int = 0) -> str:
    """Concrete syntax of a data-valued term."""
    text, level = _term(term)
    if level < parent_level:
        return f"({text})"
    return text


def _term(term: Term):
    if isinstance(term, Lit):
        return _literal(term), 99
    if isinstance(term, Var):
        return term.name, 99
    if isinstance(term, SelfExpr):
        return "self", 99
    if isinstance(term, Apply):
        return _apply(term)
    if isinstance(term, TupleCons):
        parts = [
            f"{name}: {print_term(sub)}" if name else print_term(sub)
            for name, sub in term.items
        ]
        return "tuple(" + ", ".join(parts) + ")", 99
    if isinstance(term, SetCons):
        return "{" + ", ".join(print_term(t) for t in term.items) + "}", 99
    if isinstance(term, ListCons):
        return "[" + ", ".join(print_term(t) for t in term.items) + "]", 99
    if isinstance(term, AttributeAccess):
        base = print_term(term.obj, 8)
        suffix = (
            "(" + ", ".join(print_term(a) for a in term.args) + ")"
            if term.args else ""
        )
        return f"{base}.{term.attribute}{suffix}", 8
    if isinstance(term, QueryOp):
        if term.op == "project":
            param = ", ".join(term.param)
        else:
            param = print_term(term.param)
        return f"{term.op}[{param}]({print_term(term.source)})", 99
    if isinstance(term, Forall):
        decls = ", ".join(f"{n}: {print_sort(s)}" for n, s in term.variables)
        return f"for all({decls} : {print_term(term.body)})", 99
    if isinstance(term, Exists):
        decls = ", ".join(f"{n}: {print_sort(s)}" for n, s in term.variables)
        return f"exists({decls} : {print_term(term.body)})", 99
    raise TypeError(f"cannot print term of kind {type(term).__name__}")


def _literal(term: Lit) -> str:
    value = term.value
    if value.sort.name == "string":
        escaped = value.payload.replace("'", "''")
        return f"'{escaped}'"
    if value.sort.name == "bool":
        return "true" if value.payload else "false"
    if value.sort.name == "date":
        y, m, d = value.payload
        return f"date({y}, {m}, {d})"
    return str(value.payload)


def _apply(term: Apply):
    op = term.op
    if op == "neg" and len(term.args) == 1:
        return f"-{print_term(term.args[0], 8)}", 7
    if op == "not" and len(term.args) == 1:
        # printed in the self-delimiting function-call form, so atomic
        return f"not({print_term(term.args[0])})", 99
    if op in ("and", "or", "implies", "in") and len(term.args) == 2:
        symbol = {"implies": "=>"}.get(op, op)
        level = _PRECEDENCE[op]
        left_level = level + 1 if op == "in" else level
        left = print_term(term.args[0], left_level)
        right = print_term(term.args[1], level + (0 if op == "implies" else 1))
        return f"{left} {symbol} {right}", level
    if op in _INFIX and len(term.args) == 2:
        level = _PRECEDENCE[op]
        # Comparisons are non-associative in the grammar: parenthesise
        # both operands at the same level.  Arithmetic is left-assoc.
        left_level = level + 1 if level == 5 else level
        left = print_term(term.args[0], left_level)
        right = print_term(term.args[1], level + 1)
        return f"{left} {op} {right}", level
    inner = ", ".join(print_term(a) for a in term.args)
    return f"{op}({inner})", 99


def print_formula(formula: Formula) -> str:
    """Concrete syntax of a temporal formula."""
    if isinstance(formula, StateProp):
        return print_term(formula.term)
    if isinstance(formula, After):
        pattern = formula.pattern
        if pattern.args:
            inner = ", ".join(print_term(a) for a in pattern.args)
            return f"after({pattern.event}({inner}))"
        return f"after({pattern.event})"
    if isinstance(formula, Sometime):
        return f"sometime({print_formula(formula.body)})"
    if isinstance(formula, Always):
        return f"always({print_formula(formula.body)})"
    if isinstance(formula, Since):
        return f"since({print_formula(formula.hold)}, {print_formula(formula.anchor)})"
    if isinstance(formula, NotF):
        return f"not({print_formula(formula.body)})"
    if isinstance(formula, AndF):
        return f"({print_formula(formula.left)} and {print_formula(formula.right)})"
    if isinstance(formula, OrF):
        return f"({print_formula(formula.left)} or {print_formula(formula.right)})"
    if isinstance(formula, ImpliesF):
        return f"({print_formula(formula.left)} => {print_formula(formula.right)})"
    if isinstance(formula, (ForallF, ExistsF)):
        word = "for all" if isinstance(formula, ForallF) else "exists"
        decls = ", ".join(f"{n}: {print_sort(s)}" for n, s in formula.variables)
        return f"{word}({decls} : {print_formula(formula.body)})"
    raise TypeError(f"cannot print formula of kind {type(formula).__name__}")


def print_event_ref(ref: ast.EventRef) -> str:
    prefix = ""
    if ref.qualifier is not None:
        prefix = ref.qualifier.name
        if ref.qualifier.key is not None:
            prefix += f"({print_term(ref.qualifier.key)})"
        prefix += "."
    suffix = ""
    if ref.args:
        suffix = "(" + ", ".join(print_term(a) for a in ref.args) + ")"
    return f"{prefix}{ref.name}{suffix}"


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def line(self, depth: int, text: str) -> None:
        self.lines.append("  " * depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _print_variables(w: _Writer, depth: int, variables) -> None:
    if not variables:
        return
    decls = "; ".join(f"{v.name}: {print_sort(v.sort)}" for v in variables)
    w.line(depth, f"variables {decls};")


def _print_attribute(w: _Writer, depth: int, attr: ast.AttributeDecl) -> None:
    prefix = ""
    if attr.derived:
        prefix += "derived "
    if attr.constant:
        prefix += "constant "
    if attr.hidden:
        prefix += "hidden "
    params = (
        "(" + ", ".join(print_sort(s) for s in attr.param_sorts) + ")"
        if attr.param_sorts else ""
    )
    sort = f": {print_sort(attr.sort)}" if attr.sort is not None else ""
    initial = f" initially {print_term(attr.initial)}" if attr.initial is not None else ""
    w.line(depth, f"{prefix}{attr.name}{params}{sort}{initial};")


def _print_event(w: _Writer, depth: int, event: ast.EventDecl) -> None:
    prefix = ""
    if event.kind in ("birth", "death"):
        prefix += event.kind + " "
    if event.derived:
        prefix += "derived "
    if event.active:
        prefix += "active "
    if event.hidden:
        prefix += "hidden "
    name = event.name
    if event.binding is not None:
        name = f"{event.binding.object_name}.{event.binding.event_name}"
    params = (
        "(" + ", ".join(print_sort(s) for s in event.param_sorts) + ")"
        if event.param_sorts else ""
    )
    w.line(depth, f"{prefix}{name}{params};")


def _print_template(w: _Writer, depth: int, template: ast.TemplateDecl) -> None:
    if template.data_types:
        sorts = ", ".join(print_sort(s) for s in template.data_types)
        w.line(depth, f"data types {sorts};")
    for inheriting in template.inheriting:
        w.line(depth, f"inheriting {inheriting.base_object} as {inheriting.alias};")
    if template.attributes:
        w.line(depth, "attributes")
        for attr in template.attributes:
            _print_attribute(w, depth + 1, attr)
    if template.components:
        w.line(depth, "components")
        for comp in template.components:
            if comp.container:
                w.line(depth + 1, f"{comp.name} : {comp.container}({comp.target});")
            else:
                w.line(depth + 1, f"{comp.name} : {comp.target};")
    if template.events:
        w.line(depth, "events")
        for event in template.events:
            _print_event(w, depth + 1, event)
    if template.valuation:
        w.line(depth, "valuation")
        _print_variables(w, depth + 1, template.valuation[0].variables)
        for rule in template.valuation:
            guard = f"{{ {print_term(rule.guard)} }} => " if rule.guard is not None else ""
            attr_args = (
                "(" + ", ".join(print_term(a) for a in rule.attribute_args) + ")"
                if rule.attribute_args else ""
            )
            w.line(
                depth + 1,
                f"{guard}[{print_event_ref(rule.event)}] "
                f"{rule.attribute}{attr_args} = {print_term(rule.expr)};",
            )
    if template.permissions:
        w.line(depth, "permissions")
        _print_variables(w, depth + 1, template.permissions[0].variables)
        for rule in template.permissions:
            w.line(
                depth + 1,
                f"{{ {print_formula(rule.formula)} }} {print_event_ref(rule.event)};",
            )
    if template.constraints:
        w.line(depth, "constraints")
        for constraint in template.constraints:
            kind = "initially " if constraint.kind == "initially" else "static "
            w.line(depth + 1, f"{kind}{print_term(constraint.formula)};")
    if template.derivation_rules:
        w.line(depth, "derivation rules")
        for rule in template.derivation_rules:
            params = "(" + ", ".join(rule.params) + ")" if rule.params else ""
            w.line(depth + 1, f"{rule.attribute}{params} = {print_term(rule.expr)};")
    if template.interactions:
        w.line(depth, "interaction")
        _print_variables(w, depth + 1, template.interactions[0].variables)
        for rule in template.interactions:
            _print_calling(w, depth + 1, rule)
    if template.behavior_patterns:
        w.line(depth, "behavior")
        for pattern in template.behavior_patterns:
            text = str(pattern)
            if not text.startswith("("):
                text = f"({text})"
            w.line(depth + 1, f"patterns {text};")
    if template.obligations:
        w.line(depth, "obligations")
        for obligation in template.obligations:
            w.line(depth + 1, f"{obligation.event};")


def _print_calling(w: _Writer, depth: int, rule: ast.CallingRule) -> None:
    guard = f"{{ {print_term(rule.guard)} }} => " if rule.guard is not None else ""
    if rule.atomic or len(rule.targets) > 1:
        targets = "(" + "; ".join(print_event_ref(t) for t in rule.targets) + ")"
    else:
        targets = print_event_ref(rule.targets[0])
    w.line(depth, f"{guard}{print_event_ref(rule.trigger)} >> {targets};")


def print_specification(spec: ast.Specification) -> str:
    """Render a whole specification document."""
    w = _Writer()
    for decl in spec.object_classes:
        w.line(0, f"object class {decl.name}")
        if decl.view_of is not None:
            w.line(1, f"view of {decl.view_of};")
        if decl.identification.attributes or decl.identification.data_types:
            w.line(1, "identification")
            if decl.identification.data_types:
                sorts = ", ".join(print_sort(s) for s in decl.identification.data_types)
                w.line(2, f"data types {sorts};")
            for attr in decl.identification.attributes:
                _print_attribute(w, 2, attr)
        w.line(1, "template")
        _print_template(w, 2, decl.template)
        w.line(0, f"end object class {decl.name};")
        w.line(0, "")
    for decl in spec.objects:
        w.line(0, f"object {decl.name}")
        w.line(1, "template")
        _print_template(w, 2, decl.template)
        w.line(0, f"end object {decl.name};")
        w.line(0, "")
    for decl in spec.interfaces:
        w.line(0, f"interface class {decl.name}")
        encs = ", ".join(
            f"{e.class_name} {e.alias}" if e.alias else e.class_name
            for e in decl.encapsulating
        )
        w.line(1, f"encapsulating {encs}")
        if decl.selection is not None:
            w.line(1, f"selection where {print_term(decl.selection)};")
        if decl.attributes:
            w.line(1, "attributes")
            for attr in decl.attributes:
                _print_attribute(w, 2, attr)
        if decl.events:
            w.line(1, "events")
            for event in decl.events:
                _print_event(w, 2, event)
        if decl.derivation_rules:
            w.line(1, "derivation rules")
            for rule in decl.derivation_rules:
                params = "(" + ", ".join(rule.params) + ")" if rule.params else ""
                w.line(2, f"{rule.attribute}{params} = {print_term(rule.expr)};")
        if decl.callings:
            w.line(1, "calling")
            for rule in decl.callings:
                _print_calling(w, 2, rule)
        w.line(0, f"end interface class {decl.name};")
        w.line(0, "")
    for block in spec.global_interactions:
        w.line(0, "global interactions")
        _print_variables(w, 1, block.variables)
        for rule in block.rules:
            _print_calling(w, 1, rule)
        w.line(0, "")
    return w.text()
