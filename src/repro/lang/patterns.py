"""Behaviour patterns: explicit life-cycle protocols.

The paper models templates as *processes* and reasons about protocols
("also a computer is bound to the protocol of switching on before being
able to switch off", Example 3.4).  TROLL's ``behavior`` section makes
such protocols explicit; the paper reserves the keywords without showing
syntax, so we give the section a regular-expression process language::

    behavior
      patterns (open; (deposit | withdraw)*; close);

* ``;`` -- sequence, ``|`` -- alternation, ``*`` -- iteration,
  ``?`` -- option, ``+`` -- one-or-more, parentheses group;
* atoms are event names (argument values are not constrained);
* several ``patterns (...)`` lines are alternative life cycles.

Semantics (enforced by the animator):

* only events *mentioned in the pattern alphabet* are constrained;
  other events of the signature interleave freely;
* an occurrence of a constrained event must advance the protocol,
  otherwise it is denied (a permission violation);
* at a death event the protocol must be *complete* (the automaton in an
  accepting configuration after consuming the death event, when it is
  constrained).

Patterns compile to a Thompson NFA (:func:`compile_pattern`); the
animator keeps the reachable state set per instance -- a frozen set, so
snapshot/rollback is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Set, Tuple

from repro.diagnostics import ParseError


# ----------------------------------------------------------------------
# Pattern AST
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Pattern:
    """Base class of behaviour-pattern nodes."""

    def alphabet(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - subclass duty
        raise NotImplementedError


@dataclass(frozen=True)
class PEvent(Pattern):
    """An event-name atom."""

    name: str = ""

    def alphabet(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PSeq(Pattern):
    """``p1; p2; ...`` -- sequential composition."""

    parts: Tuple[Pattern, ...] = ()

    def alphabet(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.alphabet()
        return result

    def __str__(self) -> str:
        return "(" + "; ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class PAlt(Pattern):
    """``p1 | p2 | ...`` -- alternative."""

    options: Tuple[Pattern, ...] = ()

    def alphabet(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for option in self.options:
            result |= option.alphabet()
        return result

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.options) + ")"


@dataclass(frozen=True)
class PStar(Pattern):
    """``p*`` -- zero or more repetitions."""

    body: Pattern = None  # type: ignore[assignment]

    def alphabet(self) -> FrozenSet[str]:
        return self.body.alphabet()

    def __str__(self) -> str:
        return f"{self.body}*"


@dataclass(frozen=True)
class PPlus(Pattern):
    """``p+`` -- one or more repetitions."""

    body: Pattern = None  # type: ignore[assignment]

    def alphabet(self) -> FrozenSet[str]:
        return self.body.alphabet()

    def __str__(self) -> str:
        return f"{self.body}+"


@dataclass(frozen=True)
class POpt(Pattern):
    """``p?`` -- optional."""

    body: Pattern = None  # type: ignore[assignment]

    def alphabet(self) -> FrozenSet[str]:
        return self.body.alphabet()

    def __str__(self) -> str:
        return f"{self.body}?"


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------

class ProtocolAutomaton:
    """An NFA over event names with frozen-set state tracking.

    States are integers; ``transitions[state][event]`` is the successor
    set; epsilon closure is pre-applied so the runtime never sees
    epsilon edges.
    """

    def __init__(
        self,
        transitions: Dict[int, Dict[str, FrozenSet[int]]],
        initial: FrozenSet[int],
        accepting: FrozenSet[int],
        alphabet: FrozenSet[str],
    ):
        self.transitions = transitions
        self.initial = initial
        self.accepting = accepting
        self.alphabet = alphabet

    def advance(self, states: FrozenSet[int], event: str) -> FrozenSet[int]:
        """The successor configuration (empty = protocol violation)."""
        result: Set[int] = set()
        for state in states:
            result |= self.transitions.get(state, {}).get(event, frozenset())
        return frozenset(result)

    def is_accepting(self, states: FrozenSet[int]) -> bool:
        return bool(states & self.accepting)

    def accepts(self, trace: Sequence[str]) -> bool:
        """Does the automaton accept the (constrained-events-only)
        sequence?"""
        states = self.initial
        for event in trace:
            if event not in self.alphabet:
                continue
            states = self.advance(states, event)
            if not states:
                return False
        return self.is_accepting(states)


class _Builder:
    def __init__(self) -> None:
        self.epsilon: Dict[int, Set[int]] = {}
        self.moves: Dict[int, Dict[str, Set[int]]] = {}
        self._next = 0

    def state(self) -> int:
        self._next += 1
        return self._next - 1

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, set()).add(target)

    def add_move(self, source: int, event: str, target: int) -> None:
        self.moves.setdefault(source, {}).setdefault(event, set()).add(target)

    def build_fragment(self, pattern: Pattern) -> Tuple[int, int]:
        """Thompson fragment: returns (entry, exit)."""
        if isinstance(pattern, PEvent):
            entry, exit_ = self.state(), self.state()
            self.add_move(entry, pattern.name, exit_)
            return entry, exit_
        if isinstance(pattern, PSeq):
            if not pattern.parts:
                entry = self.state()
                return entry, entry
            entry, current = self.build_fragment(pattern.parts[0])
            for part in pattern.parts[1:]:
                nxt_entry, nxt_exit = self.build_fragment(part)
                self.add_epsilon(current, nxt_entry)
                current = nxt_exit
            return entry, current
        if isinstance(pattern, PAlt):
            entry, exit_ = self.state(), self.state()
            for option in pattern.options:
                o_entry, o_exit = self.build_fragment(option)
                self.add_epsilon(entry, o_entry)
                self.add_epsilon(o_exit, exit_)
            return entry, exit_
        if isinstance(pattern, PStar):
            entry, exit_ = self.state(), self.state()
            b_entry, b_exit = self.build_fragment(pattern.body)
            self.add_epsilon(entry, b_entry)
            self.add_epsilon(entry, exit_)
            self.add_epsilon(b_exit, b_entry)
            self.add_epsilon(b_exit, exit_)
            return entry, exit_
        if isinstance(pattern, PPlus):
            b_entry, b_exit = self.build_fragment(pattern.body)
            exit_ = self.state()
            self.add_epsilon(b_exit, b_entry)
            self.add_epsilon(b_exit, exit_)
            return b_entry, exit_
        if isinstance(pattern, POpt):
            entry, exit_ = self.state(), self.state()
            b_entry, b_exit = self.build_fragment(pattern.body)
            self.add_epsilon(entry, b_entry)
            self.add_epsilon(entry, exit_)
            self.add_epsilon(b_exit, exit_)
            return entry, exit_
        raise TypeError(f"unknown pattern node {type(pattern).__name__}")

    def closure(self, states: Set[int]) -> FrozenSet[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)


def compile_pattern(patterns: Sequence[Pattern]) -> ProtocolAutomaton:
    """Compile alternative life-cycle ``patterns`` into one automaton."""
    builder = _Builder()
    combined = patterns[0] if len(patterns) == 1 else PAlt(options=tuple(patterns))
    entry, exit_ = builder.build_fragment(combined)

    initial = builder.closure({entry})
    accepting = frozenset({exit_})
    alphabet = combined.alphabet()

    # Epsilon-free transition table: for every state, for every event,
    # the closure of the targets.
    transitions: Dict[int, Dict[str, FrozenSet[int]]] = {}
    all_states = set(range(builder._next))
    for state in all_states:
        row: Dict[str, FrozenSet[int]] = {}
        for via_state in builder.closure({state}):
            for event, targets in builder.moves.get(via_state, {}).items():
                existing = set(row.get(event, frozenset()))
                existing |= builder.closure(set(targets))
                row[event] = frozenset(existing)
        if row:
            transitions[state] = row

    # Accepting = any state whose closure reaches the exit.
    accepting_states = frozenset(
        state for state in all_states if exit_ in builder.closure({state})
    )
    return ProtocolAutomaton(transitions, initial, accepting_states, alphabet)


# ----------------------------------------------------------------------
# Concrete-syntax parsing (called from the specification parser)
# ----------------------------------------------------------------------

class PatternParser:
    """Parses a parenthesised pattern expression from the main parser's
    token stream (duck-typed: needs _peek/_advance/_expect_punct/
    _expect_ident/_accept_punct)."""

    def __init__(self, host):
        self.host = host

    def parse(self) -> Pattern:
        self.host._expect_punct("(")
        pattern = self._alternation()
        self.host._expect_punct(")")
        return pattern

    def _alternation(self) -> Pattern:
        options = [self._sequence()]
        while self.host._accept_punct("|"):
            options.append(self._sequence())
        if len(options) == 1:
            return options[0]
        return PAlt(options=tuple(options))

    def _sequence(self) -> Pattern:
        parts = [self._postfix()]
        while self.host._peek().is_punct(";"):
            # a ';' directly before ')' or '|' is a separator typo --
            # only continue when an atom follows
            nxt = self.host._peek(1)
            if not (nxt.kind == "ident" or nxt.is_punct("(")):
                break
            self.host._advance()
            parts.append(self._postfix())
        if len(parts) == 1:
            return parts[0]
        return PSeq(parts=tuple(parts))

    def _postfix(self) -> Pattern:
        atom = self._atom()
        while True:
            token = self.host._peek()
            if token.is_punct("*"):
                self.host._advance()
                atom = PStar(body=atom)
            elif token.is_punct("+"):
                self.host._advance()
                atom = PPlus(body=atom)
            elif token.is_punct("?"):
                self.host._advance()
                atom = POpt(body=atom)
            else:
                return atom

    def _atom(self) -> Pattern:
        token = self.host._peek()
        if token.is_punct("("):
            self.host._advance()
            inner = self._alternation()
            self.host._expect_punct(")")
            return inner
        if token.kind == "ident":
            self.host._advance()
            return PEvent(name=token.text)
        raise ParseError(
            f"expected an event name or '(' in behaviour pattern (found {token})",
            token.position,
        )
