"""Tokenizer for TROLL concrete syntax.

Token kinds:

* ``ident`` -- identifiers (``DEPT``, ``est_date``);
* ``keyword`` -- reserved words (see :data:`KEYWORDS`); the sort
  constructors ``set``/``list``/``map``/``tuple`` and ``self`` are
  recognised case-insensitively (the paper writes both ``LIST(DEPT)``
  and ``set(PERSON)``), all other keywords only in lowercase;
* ``number`` -- integer or real literals;
* ``string`` -- single-quoted string literals (``'Research'``);
* ``punct`` -- operators and punctuation, with the paper's typography
  normalised to ASCII (``⇒`` -> ``=>``, ``≥`` -> ``>=``, ``≤`` -> ``<=``,
  ``≠`` -> ``<>``, ``∈`` -> the keyword ``in``);
* ``eof`` -- end of input.

Comments: ``--`` to end of line, and ``(* ... *)`` blocks (nestable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.diagnostics import LexerError, SourcePosition

#: Reserved words of the TROLL subset implemented here.
KEYWORDS = frozenset(
    {
        "object", "class", "interface", "encapsulating", "end",
        "identification", "data", "types", "template", "attributes",
        "events", "valuation", "permissions", "constraints", "derivation",
        "rules", "calling", "interaction", "interactions", "global",
        "variables", "components", "behavior", "patterns", "obligations",
        "birth", "death", "derived", "active", "hidden", "constant",
        "initially", "static", "dynamic",
        "view", "of", "inheriting", "as", "specializing", "selection",
        "where", "import", "export", "module", "schema", "conceptual",
        "internal", "external", "society",
        "sometime", "always", "after", "since", "for", "all", "exists",
        "and", "or", "not", "in", "true", "false",
        "set", "list", "map", "tuple", "self",
    }
)

#: Keywords recognised regardless of letter case.
CASELESS_KEYWORDS = frozenset({"set", "list", "map", "tuple", "self"})

#: Multi-character punctuation, longest first.
_MULTI_PUNCT = (">>", "=>", ">=", "<=", "<>", "|->", "..", ":=")
_SINGLE_PUNCT = "()[]{},;:.=<>+-*/|?"

#: Typographic characters normalised to their ASCII spelling.
_UNICODE_PUNCT = {
    "⇒": "=>",   # ⇒
    "≥": ">=",   # ≥
    "≤": "<=",   # ≤
    "≠": "<>",   # ≠
    "•": ".",    # • (aspect dot, b•t)
    "→": "->",   # →
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    position: SourcePosition
    value: object = None

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.text in words

    def is_punct(self, *symbols: str) -> bool:
        return self.kind == "punct" and self.text in symbols

    def __str__(self) -> str:
        if self.kind == "eof":
            return "<end of input>"
        return repr(self.text)


class Lexer:
    """Streaming tokenizer; :func:`tokenize` is the usual entry point."""

    def __init__(self, text: str, source: str = "<string>"):
        self.text = text
        self.source = source
        self.offset = 0
        self.line = 1
        self.column = 1

    def _position(self) -> SourcePosition:
        return SourcePosition(line=self.line, column=self.column, source=self.source)

    def _peek(self, ahead: int = 0) -> str:
        index = self.offset + ahead
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self.text[self.offset : self.offset + count]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.offset += count
        return taken

    def _skip_trivia(self) -> None:
        while self.offset < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.offset < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._position()
        self._advance(2)
        depth = 1
        while depth > 0:
            if self.offset >= len(self.text):
                raise LexerError("unterminated block comment", start)
            if self._peek() == "(" and self._peek(1) == "*":
                depth += 1
                self._advance(2)
            elif self._peek() == "*" and self._peek(1) == ")":
                depth -= 1
                self._advance(2)
            else:
                self._advance()

    def next_token(self) -> Token:
        self._skip_trivia()
        position = self._position()
        if self.offset >= len(self.text):
            return Token("eof", "", position)
        ch = self._peek()

        if ch in _UNICODE_PUNCT:
            self._advance()
            text = _UNICODE_PUNCT[ch]
            return Token("punct", text, position)

        if ch.isalpha() or ch == "_":
            return self._lex_word(position)
        if ch.isdigit():
            return self._lex_number(position)
        if ch == "'":
            return self._lex_string(position)

        for multi in _MULTI_PUNCT:
            if self.text.startswith(multi, self.offset):
                self._advance(len(multi))
                return Token("punct", multi, position)
        if ch in _SINGLE_PUNCT:
            self._advance()
            return Token("punct", ch, position)
        raise LexerError(f"unexpected character {ch!r}", position)

    def _lex_word(self, position: SourcePosition) -> Token:
        start = self.offset
        while self.offset < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self.text[start : self.offset]
        lowered = word.lower()
        if word in KEYWORDS:
            return Token("keyword", word, position)
        if lowered in CASELESS_KEYWORDS:
            return Token("keyword", lowered, position)
        return Token("ident", word, position)

    def _lex_number(self, position: SourcePosition) -> Token:
        start = self.offset
        while self.offset < len(self.text) and self._peek().isdigit():
            self._advance()
        is_real = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self.offset < len(self.text) and self._peek().isdigit():
                self._advance()
        text = self.text[start : self.offset]
        value: object = float(text) if is_real else int(text)
        return Token("number", text, position, value=value)

    def _lex_string(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.offset >= len(self.text):
                raise LexerError("unterminated string literal", position)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":  # '' escapes a quote
                    chars.append(self._advance())
                    continue
                break
            chars.append(ch)
        text = "".join(chars)
        return Token("string", text, position, value=text)

    def tokens(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            yield token
            if token.kind == "eof":
                return


def tokenize(text: str, source: str = "<string>") -> List[Token]:
    """Tokenize ``text`` completely (including the trailing EOF token)."""
    return list(Lexer(text, source).tokens())
