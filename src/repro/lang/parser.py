"""Recursive-descent parser for TROLL specifications.

The grammar accepts every listing in the paper verbatim (modulo ASCII
spellings; see :mod:`repro.lang.lexer`).  Notable surface conveniences
from the listings that the grammar supports:

* valuation rules in both bare (``establishment(d) est_date = d;``) and
  bracketed (``[InsertEmp(n,b,s)] Emps = insert(...);``) form, with an
  optional ``{guard} =>`` prefix;
* ``variables`` clauses with either ``;`` or ``,`` separated declarations
  (``variables P: PERSON; d: date;`` and ``variables n:string, b:date``);
* quantifiers in both attached-body (``for all(P: PERSON : φ)``) and
  detached-body (``exists(s1: integer) φ``) form;
* query algebra in bracket form: ``select[φ](source)``,
  ``project[f1, f2](source)``;
* transaction calls: ``e >> (e1; e2);``.

Permission formulas are parsed with the ordinary term grammar (in which
``sometime``/``always``/``after``/``since`` look like function
applications) and converted to the temporal AST by
:func:`term_to_formula`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datatypes.sorts import Sort, SetSort, ListSort, MapSort, TupleSort, parse_sort_name
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Exists,
    Forall,
    ListCons,
    Lit,
    QueryOp,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.datatypes.values import boolean, integer, real, string
from repro.diagnostics import ParseError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize
from repro.temporal.formulas import (
    After,
    Always,
    AndF,
    EventPattern,
    ExistsF,
    ForallF,
    Formula,
    ImpliesF,
    NotF,
    OrF,
    Since,
    Sometime,
    StateProp,
)

#: Keywords that open a template/interface section (or close a declaration);
#: member lists (attributes, events, ...) stop when one of these is next.
_SECTION_KEYWORDS = frozenset(
    {
        "attributes", "events", "valuation", "permissions", "constraints",
        "derivation", "rules", "calling", "interaction", "interactions",
        "components", "template", "identification", "data", "inheriting",
        "variables", "behavior", "patterns", "obligations", "end", "object", "class",
        "interface", "global", "selection",
    }
)

_EVENT_MODIFIERS = frozenset({"birth", "death", "derived", "active", "hidden"})
_ATTR_MODIFIERS = frozenset({"derived", "constant", "hidden"})


class Parser:
    """A single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(f"{message} (found {token})", token.position)

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise self._error(f"expected keyword {' or '.join(words)!s}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> Token:
        token = self._peek()
        if token.kind != "ident":
            raise self._error(f"expected {what}")
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, *words: str) -> bool:
        if self._peek().is_keyword(*words):
            self._advance()
            return True
        return False

    def _at_section_keyword(self) -> bool:
        token = self._peek()
        return token.kind == "eof" or (
            token.kind == "keyword" and token.text in _SECTION_KEYWORDS
        )

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_specification(self) -> ast.Specification:
        classes: List[ast.ObjectClassDecl] = []
        objects: List[ast.ObjectDecl] = []
        interfaces: List[ast.InterfaceClassDecl] = []
        globals_: List[ast.GlobalInteractionsDecl] = []
        while self._peek().kind != "eof":
            token = self._peek()
            if token.is_keyword("object"):
                if self._peek(1).is_keyword("class"):
                    classes.append(self._parse_object_class())
                else:
                    objects.append(self._parse_object())
            elif token.is_keyword("interface"):
                interfaces.append(self._parse_interface_class())
            elif token.is_keyword("global"):
                globals_.append(self._parse_global_interactions())
            else:
                raise self._error(
                    "expected 'object', 'object class', 'interface class' "
                    "or 'global interactions'"
                )
        return ast.Specification(
            object_classes=tuple(classes),
            objects=tuple(objects),
            interfaces=tuple(interfaces),
            global_interactions=tuple(globals_),
        )

    # ------------------------------------------------------------------
    # Object classes and single objects
    # ------------------------------------------------------------------

    def _parse_object_class(self) -> ast.ObjectClassDecl:
        position = self._expect_keyword("object").position
        self._expect_keyword("class")
        name = self._expect_ident("object class name").text
        self._accept_punct(";")

        view_of: Optional[str] = None
        identification = ast.IdentificationDecl()
        data_types: Tuple[Sort, ...] = ()
        template = ast.TemplateDecl()

        while not self._peek().is_keyword("end"):
            token = self._peek()
            if token.is_keyword("view"):
                self._advance()
                self._expect_keyword("of")
                view_of = self._expect_ident("base class name").text
                self._accept_punct(";")
            elif token.is_keyword("identification"):
                identification = self._parse_identification()
            elif token.is_keyword("data"):
                data_types = data_types + self._parse_data_types()
            elif token.is_keyword("template"):
                self._advance()
                template = self._parse_template()
            else:
                raise self._error(
                    "expected 'view of', 'identification', 'data types', "
                    "'template' or 'end'"
                )

        self._parse_end_marker("object class", name)
        if data_types:
            template = ast.TemplateDecl(
                position=template.position,
                data_types=data_types + template.data_types,
                inheriting=template.inheriting,
                attributes=template.attributes,
                components=template.components,
                events=template.events,
                valuation=template.valuation,
                permissions=template.permissions,
                constraints=template.constraints,
                derivation_rules=template.derivation_rules,
                interactions=template.interactions,
                obligations=template.obligations,
                behavior_patterns=template.behavior_patterns,
            )
        return ast.ObjectClassDecl(
            position=position,
            name=name,
            identification=identification,
            view_of=view_of,
            template=template,
        )

    def _parse_object(self) -> ast.ObjectDecl:
        position = self._expect_keyword("object").position
        name = self._expect_ident("object name").text
        self._accept_punct(";")
        template = ast.TemplateDecl()
        while not self._peek().is_keyword("end"):
            if self._accept_keyword("template"):
                template = self._parse_template()
            else:
                raise self._error("expected 'template' or 'end'")
        self._parse_end_marker("object", name)
        return ast.ObjectDecl(position=position, name=name, template=template)

    def _parse_end_marker(self, construct: str, name: str) -> None:
        self._expect_keyword("end")
        for word in construct.split():
            self._expect_keyword(word)
        closing = self._peek()
        if closing.kind == "ident":
            self._advance()
            if closing.text != name:
                raise ParseError(
                    f"mismatched end marker: expected {name!r}, got {closing.text!r}",
                    closing.position,
                )
        self._accept_punct(";")

    def _parse_identification(self) -> ast.IdentificationDecl:
        position = self._expect_keyword("identification").position
        data_types: Tuple[Sort, ...] = ()
        if self._peek().is_keyword("data"):
            data_types = self._parse_data_types()
        attributes: List[ast.AttributeDecl] = []
        while self._peek().kind == "ident":
            attributes.append(self._parse_attribute_decl())
        return ast.IdentificationDecl(
            position=position,
            data_types=data_types,
            attributes=tuple(attributes),
        )

    def _parse_data_types(self) -> Tuple[Sort, ...]:
        self._expect_keyword("data")
        self._expect_keyword("types")
        sorts = [self._parse_sort()]
        while self._accept_punct(","):
            sorts.append(self._parse_sort())
        self._accept_punct(";")
        return tuple(sorts)

    # ------------------------------------------------------------------
    # Template sections
    # ------------------------------------------------------------------

    def _parse_template(self) -> ast.TemplateDecl:
        position = self._peek().position
        data_types: Tuple[Sort, ...] = ()
        inheriting: List[ast.InheritingDecl] = []
        attributes: List[ast.AttributeDecl] = []
        components: List[ast.ComponentDecl] = []
        events: List[ast.EventDecl] = []
        valuation: List[ast.ValuationRule] = []
        permissions: List[ast.PermissionRule] = []
        constraints: List[ast.ConstraintDecl] = []
        derivation_rules: List[ast.DerivationRule] = []
        interactions: List[ast.CallingRule] = []
        obligations: List[ast.ObligationDecl] = []
        behavior_patterns: List[object] = []

        while True:
            token = self._peek()
            if token.is_keyword("data"):
                data_types = data_types + self._parse_data_types()
            elif token.is_keyword("inheriting"):
                inheriting.append(self._parse_inheriting())
            elif token.is_keyword("attributes"):
                self._advance()
                while self._peek().kind == "ident" or self._peek().is_keyword(
                    *_ATTR_MODIFIERS
                ):
                    attributes.append(self._parse_attribute_decl())
            elif token.is_keyword("components"):
                self._advance()
                while self._peek().kind == "ident":
                    components.append(self._parse_component_decl())
            elif token.is_keyword("events"):
                self._advance()
                while self._peek().kind == "ident" or self._peek().is_keyword(
                    *_EVENT_MODIFIERS
                ):
                    events.append(self._parse_event_decl())
            elif token.is_keyword("valuation"):
                self._advance()
                valuation.extend(self._parse_valuation_section())
            elif token.is_keyword("permissions"):
                self._advance()
                permissions.extend(self._parse_permission_section())
            elif token.is_keyword("constraints"):
                self._advance()
                constraints.extend(self._parse_constraints_section())
            elif token.is_keyword("derivation") or token.is_keyword("rules"):
                self._advance()
                self._accept_keyword("rules")
                derivation_rules.extend(self._parse_derivation_rules())
            elif token.is_keyword("interaction", "interactions", "calling"):
                self._advance()
                interactions.extend(self._parse_calling_section())
            elif token.is_keyword("behavior"):
                self._advance()
                from repro.lang.patterns import PatternParser

                while True:
                    self._accept_keyword("patterns")
                    if not self._peek().is_punct("("):
                        break
                    behavior_patterns.append(PatternParser(self).parse())
                    self._accept_punct(";")
            elif token.is_keyword("obligations"):
                self._advance()
                while self._peek().kind == "ident":
                    position = self._peek().position
                    name = self._advance().text
                    self._accept_punct(";")
                    obligations.append(
                        ast.ObligationDecl(position=position, event=name)
                    )
            else:
                break

        return ast.TemplateDecl(
            position=position,
            data_types=data_types,
            inheriting=tuple(inheriting),
            attributes=tuple(attributes),
            components=tuple(components),
            events=tuple(events),
            valuation=tuple(valuation),
            permissions=tuple(permissions),
            constraints=tuple(constraints),
            derivation_rules=tuple(derivation_rules),
            interactions=tuple(interactions),
            obligations=tuple(obligations),
            behavior_patterns=tuple(behavior_patterns),
        )

    def _parse_inheriting(self) -> ast.InheritingDecl:
        position = self._expect_keyword("inheriting").position
        base = self._expect_ident("base object name").text
        self._expect_keyword("as")
        alias = self._expect_ident("alias").text
        self._accept_punct(";")
        return ast.InheritingDecl(position=position, base_object=base, alias=alias)

    def _parse_attribute_decl(self) -> ast.AttributeDecl:
        position = self._peek().position
        derived = constant = hidden = False
        while self._peek().is_keyword(*_ATTR_MODIFIERS):
            word = self._advance().text
            derived = derived or word == "derived"
            constant = constant or word == "constant"
            hidden = hidden or word == "hidden"
        name = self._expect_ident("attribute name").text
        param_sorts: Tuple[Sort, ...] = ()
        if self._accept_punct("("):
            params = [self._parse_sort()]
            while self._accept_punct(","):
                params.append(self._parse_sort())
            self._expect_punct(")")
            param_sorts = tuple(params)
        sort: Optional[Sort] = None
        if self._accept_punct(":"):
            sort = self._parse_sort()
        initial: Optional[Term] = None
        if self._accept_keyword("initially"):
            initial = self.parse_term()
        self._accept_punct(";")
        return ast.AttributeDecl(
            position=position,
            name=name,
            param_sorts=param_sorts,
            sort=sort,
            derived=derived,
            constant=constant,
            hidden=hidden,
            initial=initial,
        )

    def _parse_component_decl(self) -> ast.ComponentDecl:
        position = self._peek().position
        name = self._expect_ident("component name").text
        self._expect_punct(":")
        container: Optional[str] = None
        token = self._peek()
        if token.is_keyword("list", "set", "map"):
            container = self._advance().text
            self._expect_punct("(")
            target = self._expect_ident("component class").text
            self._expect_punct(")")
        else:
            target = self._expect_ident("component class").text
        self._accept_punct(";")
        return ast.ComponentDecl(
            position=position, name=name, container=container, target=target
        )

    def _parse_event_decl(self) -> ast.EventDecl:
        position = self._peek().position
        kind = "normal"
        derived = active = hidden = False
        while self._peek().is_keyword(*_EVENT_MODIFIERS):
            word = self._advance().text
            if word in ("birth", "death"):
                kind = word
            derived = derived or word == "derived"
            active = active or word == "active"
            hidden = hidden or word == "hidden"
        name = self._expect_ident("event name").text
        binding: Optional[ast.QualifiedEventName] = None
        if self._accept_punct("."):
            event_name = self._expect_ident("event name").text
            binding = ast.QualifiedEventName(
                position=position, object_name=name, event_name=event_name
            )
            name = event_name
        param_sorts: Tuple[Sort, ...] = ()
        if self._accept_punct("("):
            params = [self._parse_sort()]
            while self._accept_punct(","):
                params.append(self._parse_sort())
            self._expect_punct(")")
            param_sorts = tuple(params)
        self._accept_punct(";")
        return ast.EventDecl(
            position=position,
            name=name,
            param_sorts=param_sorts,
            kind=kind,
            derived=derived,
            active=active,
            hidden=hidden,
            binding=binding,
        )

    # ------------------------------------------------------------------
    # Variables clauses
    # ------------------------------------------------------------------

    def _parse_variables_clause(self) -> Tuple[ast.VariableDecl, ...]:
        if not self._accept_keyword("variables"):
            return ()
        decls: List[ast.VariableDecl] = []
        while True:
            names = [self._expect_ident("variable name").text]
            # `P, Q: PERSON` -- consume further names while the comma is
            # followed by `ident` and then either another comma or the colon.
            while (
                self._peek().is_punct(",")
                and self._peek(1).kind == "ident"
                and (self._peek(2).is_punct(",") or self._peek(2).is_punct(":"))
            ):
                self._advance()
                names.append(self._expect_ident("variable name").text)
            position = self._peek().position
            self._expect_punct(":")
            sort = self._parse_sort()
            for n in names:
                decls.append(ast.VariableDecl(position=position, name=n, sort=sort))
            if self._accept_punct(";") or self._accept_punct(","):
                # Continue while the next tokens look like another declaration.
                if self._peek().kind == "ident" and (
                    self._peek(1).is_punct(":") or self._peek(1).is_punct(",")
                ):
                    continue
            break
        return tuple(decls)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def _parse_valuation_section(self) -> List[ast.ValuationRule]:
        variables = self._parse_variables_clause()
        rules: List[ast.ValuationRule] = []
        while not self._at_section_keyword():
            rules.append(self._parse_valuation_rule(variables))
        return rules

    def _parse_valuation_rule(
        self, variables: Tuple[ast.VariableDecl, ...]
    ) -> ast.ValuationRule:
        position = self._peek().position
        guard: Optional[Term] = None
        if self._accept_punct("{"):
            guard = self.parse_term()
            self._expect_punct("}")
            self._accept_punct("=>")
        if self._accept_punct("["):
            event = self._parse_event_ref()
            self._expect_punct("]")
        else:
            event = self._parse_event_ref()
        attribute = self._expect_ident("attribute name").text
        attribute_args: Tuple[Term, ...] = ()
        if self._accept_punct("("):
            args = [self.parse_term()]
            while self._accept_punct(","):
                args.append(self.parse_term())
            self._expect_punct(")")
            attribute_args = tuple(args)
        self._expect_punct("=")
        expr = self.parse_term()
        self._expect_punct(";")
        return ast.ValuationRule(
            position=position,
            variables=variables,
            guard=guard,
            event=event,
            attribute=attribute,
            attribute_args=attribute_args,
            expr=expr,
        )

    def _parse_permission_section(self) -> List[ast.PermissionRule]:
        variables = self._parse_variables_clause()
        rules: List[ast.PermissionRule] = []
        while self._peek().is_punct("{"):
            rules.append(self._parse_permission_rule(variables))
        return rules

    def _parse_permission_rule(
        self, variables: Tuple[ast.VariableDecl, ...]
    ) -> ast.PermissionRule:
        position = self._expect_punct("{").position
        formula_term = self.parse_term()
        self._expect_punct("}")
        event = self._parse_event_ref()
        self._expect_punct(";")
        return ast.PermissionRule(
            position=position,
            variables=variables,
            formula=term_to_formula(formula_term),
            event=event,
        )

    def _parse_constraints_section(self) -> List[ast.ConstraintDecl]:
        rules: List[ast.ConstraintDecl] = []
        while True:
            token = self._peek()
            if token.is_keyword("static", "initially"):
                kind = self._advance().text
                kind = "initially" if kind == "initially" else "static"
            elif self._starts_term(token):
                kind = "static"
            else:
                break
            position = self._peek().position
            formula = self.parse_term()
            self._accept_punct(";")
            rules.append(
                ast.ConstraintDecl(position=position, kind=kind, formula=formula)
            )
        return rules

    def _starts_term(self, token: Token) -> bool:
        if token.kind in ("ident", "number", "string"):
            return True
        if token.is_punct("(", "{", "[", "-"):
            return True
        return token.is_keyword(
            "not", "true", "false", "self", "exists", "for", "tuple", "in",
            "sometime", "always", "after", "since",
        )

    def _parse_derivation_rules(self) -> List[ast.DerivationRule]:
        rules: List[ast.DerivationRule] = []
        while self._peek().kind == "ident":
            position = self._peek().position
            attribute = self._expect_ident("derived attribute name").text
            params: Tuple[str, ...] = ()
            if self._accept_punct("("):
                names = [self._expect_ident("parameter name").text]
                while self._accept_punct(","):
                    names.append(self._expect_ident("parameter name").text)
                self._expect_punct(")")
                params = tuple(names)
            self._expect_punct("=")
            expr = self.parse_term()
            self._accept_punct(";")
            rules.append(
                ast.DerivationRule(
                    position=position, attribute=attribute, params=params, expr=expr
                )
            )
        return rules

    def _parse_calling_section(self) -> List[ast.CallingRule]:
        variables = self._parse_variables_clause()
        rules: List[ast.CallingRule] = []
        while not self._at_section_keyword():
            rules.append(self._parse_calling_rule(variables))
        return rules

    def _parse_calling_rule(
        self, variables: Tuple[ast.VariableDecl, ...]
    ) -> ast.CallingRule:
        position = self._peek().position
        guard: Optional[Term] = None
        if self._accept_punct("{"):
            guard = self.parse_term()
            self._expect_punct("}")
            self._accept_punct("=>")
        trigger = self._parse_event_ref()
        self._expect_punct(">>")
        targets: List[ast.EventRef] = []
        atomic = False
        if self._accept_punct("("):
            atomic = True
            targets.append(self._parse_event_ref())
            while self._accept_punct(";"):
                targets.append(self._parse_event_ref())
            self._expect_punct(")")
        else:
            targets.append(self._parse_event_ref())
        self._expect_punct(";")
        return ast.CallingRule(
            position=position,
            variables=variables,
            guard=guard,
            trigger=trigger,
            targets=tuple(targets),
            atomic=atomic,
        )

    def _parse_event_ref(self) -> ast.EventRef:
        position = self._peek().position
        if self._peek().is_keyword("self") and self._peek(1).is_punct("."):
            # self.Event(...) -- an explicitly self-qualified event.
            self._advance()
            self._advance()
            qualifier = ast.Qualifier(position=position, name="self", key=None)
            name = self._expect_ident("event name").text
            return ast.EventRef(
                position=position,
                qualifier=qualifier,
                name=name,
                args=self._parse_event_args(),
            )
        first = self._expect_ident("event name").text
        qualifier: Optional[ast.Qualifier] = None
        if self._peek().is_punct("."):
            self._advance()
            qualifier = ast.Qualifier(position=position, name=first, key=None)
            name = self._expect_ident("event name").text
        elif self._peek().is_punct("(") and self._looks_like_qualifier():
            self._expect_punct("(")
            key = self.parse_term()
            self._expect_punct(")")
            self._expect_punct(".")
            qualifier = ast.Qualifier(position=position, name=first, key=key)
            name = self._expect_ident("event name").text
        else:
            name = first
        return ast.EventRef(
            position=position,
            qualifier=qualifier,
            name=name,
            args=self._parse_event_args(),
        )

    def _looks_like_qualifier(self) -> bool:
        """Distinguish ``DEPT(D).event`` from ``hire(P)`` by scanning for a
        ``.`` right after the balanced parenthesis group."""
        depth = 0
        ahead = 0
        while True:
            token = self._peek(ahead)
            if token.kind == "eof":
                return False
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return self._peek(ahead + 1).is_punct(".")
            ahead += 1
            if ahead > 200:
                return False

    def _parse_event_args(self) -> Tuple[Term, ...]:
        if not self._accept_punct("("):
            return ()
        if self._accept_punct(")"):
            return ()
        args = [self.parse_term()]
        while self._accept_punct(","):
            args.append(self.parse_term())
        self._expect_punct(")")
        return tuple(args)

    # ------------------------------------------------------------------
    # Interface classes
    # ------------------------------------------------------------------

    def _parse_interface_class(self) -> ast.InterfaceClassDecl:
        position = self._expect_keyword("interface").position
        self._expect_keyword("class")
        name = self._expect_ident("interface class name").text
        self._accept_punct(";")
        self._expect_keyword("encapsulating")
        encapsulating: List[ast.EncapsulationDecl] = []
        while True:
            enc_position = self._peek().position
            class_name = self._expect_ident("encapsulated class name").text
            alias: Optional[str] = None
            if self._peek().kind == "ident":
                alias = self._advance().text
            encapsulating.append(
                ast.EncapsulationDecl(
                    position=enc_position, class_name=class_name, alias=alias
                )
            )
            if not self._accept_punct(","):
                break
        self._accept_punct(";")

        selection: Optional[Term] = None
        attributes: List[ast.AttributeDecl] = []
        events: List[ast.EventDecl] = []
        derivation_rules: List[ast.DerivationRule] = []
        callings: List[ast.CallingRule] = []

        while not self._peek().is_keyword("end"):
            token = self._peek()
            if token.is_keyword("selection"):
                self._advance()
                self._expect_keyword("where")
                selection = self.parse_term()
                self._accept_punct(";")
            elif token.is_keyword("attributes"):
                self._advance()
                while self._peek().kind == "ident" or self._peek().is_keyword(
                    *_ATTR_MODIFIERS
                ):
                    attributes.append(self._parse_attribute_decl())
            elif token.is_keyword("events"):
                self._advance()
                while self._peek().kind == "ident" or self._peek().is_keyword(
                    *_EVENT_MODIFIERS
                ):
                    events.append(self._parse_event_decl())
            elif token.is_keyword("derivation") or token.is_keyword("rules"):
                self._advance()
                self._accept_keyword("derivation")
                self._accept_keyword("rules")
                derivation_rules.extend(self._parse_derivation_rules())
            elif token.is_keyword("calling"):
                self._advance()
                callings.extend(self._parse_calling_section())
            else:
                raise self._error(
                    "expected 'selection', 'attributes', 'events', "
                    "'derivation', 'calling' or 'end'"
                )

        self._parse_end_marker("interface class", name)
        return ast.InterfaceClassDecl(
            position=position,
            name=name,
            encapsulating=tuple(encapsulating),
            selection=selection,
            attributes=tuple(attributes),
            events=tuple(events),
            derivation_rules=tuple(derivation_rules),
            callings=tuple(callings),
        )

    # ------------------------------------------------------------------
    # Global interactions
    # ------------------------------------------------------------------

    def _parse_global_interactions(self) -> ast.GlobalInteractionsDecl:
        position = self._expect_keyword("global").position
        self._expect_keyword("interactions")
        variables = self._parse_variables_clause()
        rules: List[ast.CallingRule] = []
        while not self._at_section_keyword():
            rules.append(self._parse_calling_rule(variables))
        if self._peek().is_keyword("end") and self._peek(1).is_keyword("global"):
            self._advance()
            self._advance()
            self._accept_keyword("interactions")
            self._accept_punct(";")
        return ast.GlobalInteractionsDecl(
            position=position, variables=variables, rules=tuple(rules)
        )

    # ------------------------------------------------------------------
    # Sorts
    # ------------------------------------------------------------------

    def _parse_sort(self) -> Sort:
        token = self._peek()
        if token.is_keyword("set"):
            self._advance()
            self._expect_punct("(")
            element = self._parse_sort()
            self._expect_punct(")")
            return SetSort(name="set", element=element)
        if token.is_keyword("list"):
            self._advance()
            self._expect_punct("(")
            element = self._parse_sort()
            self._expect_punct(")")
            return ListSort(name="list", element=element)
        if token.is_keyword("map"):
            self._advance()
            self._expect_punct("(")
            key = self._parse_sort()
            self._expect_punct(",")
            value = self._parse_sort()
            self._expect_punct(")")
            return MapSort(name="map", key=key, value=value)
        if token.is_keyword("tuple"):
            self._advance()
            self._expect_punct("(")
            fields: List[Tuple[str, Sort]] = []
            while True:
                field_name = self._expect_ident("field name").text
                self._expect_punct(":")
                fields.append((field_name, self._parse_sort()))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return TupleSort(name="tuple", fields=tuple(fields))
        if token.is_punct("|"):
            self._advance()
            class_name = self._expect_ident("class name").text
            self._expect_punct("|")
            return parse_sort_name(f"|{class_name}|")
        if token.kind == "ident":
            return parse_sort_name(self._advance().text)
        raise self._error("expected a sort")

    # ------------------------------------------------------------------
    # Terms (Pratt-style precedence climbing)
    # ------------------------------------------------------------------

    def parse_term(self) -> Term:
        return self._parse_implies()

    def _parse_implies(self) -> Term:
        left = self._parse_or()
        if self._peek().is_punct("=>"):
            position = self._advance().position
            right = self._parse_implies()
            return Apply(position=position, op="implies", args=(left, right))
        return left

    def _parse_or(self) -> Term:
        left = self._parse_and()
        while self._peek().is_keyword("or"):
            position = self._advance().position
            right = self._parse_and()
            left = Apply(position=position, op="or", args=(left, right))
        return left

    def _parse_and(self) -> Term:
        left = self._parse_not()
        while self._peek().is_keyword("and"):
            position = self._advance().position
            right = self._parse_not()
            left = Apply(position=position, op="and", args=(left, right))
        return left

    def _parse_not(self) -> Term:
        # Prefix `not x`; the function-call form `not(x)` is handled as
        # an atom in _parse_primary so it composes with infix operators.
        if self._peek().is_keyword("not") and not self._peek(1).is_punct("("):
            position = self._advance().position
            body = self._parse_not()
            return Apply(position=position, op="not", args=(body,))
        return self._parse_comparison()

    def _parse_comparison(self) -> Term:
        left = self._parse_additive()
        token = self._peek()
        if token.is_punct("=", "<>", "<", "<=", ">", ">="):
            position = self._advance().position
            right = self._parse_additive()
            return Apply(position=position, op=token.text, args=(left, right))
        if token.is_keyword("in"):
            position = self._advance().position
            right = self._parse_additive()
            return Apply(position=position, op="in", args=(left, right))
        return left

    def _parse_additive(self) -> Term:
        left = self._parse_multiplicative()
        while self._peek().is_punct("+", "-"):
            token = self._advance()
            right = self._parse_multiplicative()
            left = Apply(position=token.position, op=token.text, args=(left, right))
        return left

    def _parse_multiplicative(self) -> Term:
        left = self._parse_unary()
        while self._peek().is_punct("*", "/"):
            token = self._advance()
            right = self._parse_unary()
            left = Apply(position=token.position, op=token.text, args=(left, right))
        return left

    def _parse_unary(self) -> Term:
        if self._peek().is_punct("-"):
            position = self._advance().position
            body = self._parse_unary()
            return Apply(position=position, op="neg", args=(body,))
        return self._parse_postfix()

    def _parse_postfix(self) -> Term:
        term = self._parse_primary()
        while self._peek().is_punct("."):
            position = self._advance().position
            attribute = self._expect_ident("attribute name").text
            args: Tuple[Term, ...] = ()
            if self._peek().is_punct("("):
                self._advance()
                if not self._accept_punct(")"):
                    arg_list = [self.parse_term()]
                    while self._accept_punct(","):
                        arg_list.append(self.parse_term())
                    self._expect_punct(")")
                    args = tuple(arg_list)
            term = AttributeAccess(
                position=position, obj=term, attribute=attribute, args=args
            )
        return term

    def _parse_primary(self) -> Term:
        token = self._peek()
        position = token.position

        if token.kind == "number":
            self._advance()
            value = real(token.value) if isinstance(token.value, float) else integer(token.value)
            return Lit(position=position, value=value)
        if token.kind == "string":
            self._advance()
            return Lit(position=position, value=string(token.value))
        if token.is_keyword("true"):
            self._advance()
            return Lit(position=position, value=boolean(True))
        if token.is_keyword("false"):
            self._advance()
            return Lit(position=position, value=boolean(False))
        if token.is_keyword("self"):
            self._advance()
            return SelfExpr(position=position)
        if token.is_punct("("):
            self._advance()
            inner = self.parse_term()
            self._expect_punct(")")
            return inner
        if token.is_punct("{"):
            self._advance()
            if self._accept_punct("}"):
                return SetCons(position=position, items=())
            items = [self.parse_term()]
            while self._accept_punct(","):
                items.append(self.parse_term())
            self._expect_punct("}")
            return SetCons(position=position, items=tuple(items))
        if token.is_punct("["):
            self._advance()
            if self._accept_punct("]"):
                return ListCons(position=position, items=())
            items = [self.parse_term()]
            while self._accept_punct(","):
                items.append(self.parse_term())
            self._expect_punct("]")
            return ListCons(position=position, items=tuple(items))
        if token.is_keyword("tuple"):
            self._advance()
            return self._parse_tuple_cons(position)
        if token.is_keyword("sometime", "always"):
            op = self._advance().text
            self._expect_punct("(")
            inner = self.parse_term()
            self._expect_punct(")")
            return Apply(position=position, op=op, args=(inner,))
        if token.is_keyword("after"):
            self._advance()
            self._expect_punct("(")
            inner = self.parse_term()
            self._expect_punct(")")
            return Apply(position=position, op="after", args=(inner,))
        if token.is_keyword("since"):
            self._advance()
            self._expect_punct("(")
            hold = self.parse_term()
            self._expect_punct(",")
            anchor = self.parse_term()
            self._expect_punct(")")
            return Apply(position=position, op="since", args=(hold, anchor))
        if token.is_keyword("not") and self._peek(1).is_punct("("):
            # `not(φ)` -- atomic function-call form.
            self._advance()
            self._expect_punct("(")
            body = self.parse_term()
            self._expect_punct(")")
            return Apply(position=position, op="not", args=(body,))
        if token.is_keyword("in"):
            # `in(Emps, tuple(n, b, s))` -- the membership test in
            # function-application form (emp_rel listing).
            self._advance()
            self._expect_punct("(")
            left = self.parse_term()
            self._expect_punct(",")
            right = self.parse_term()
            self._expect_punct(")")
            return Apply(position=position, op="in", args=(left, right))
        if token.is_keyword("for") or token.is_keyword("exists"):
            return self._parse_quantifier()
        if token.kind == "ident":
            return self._parse_ident_primary()
        raise self._error("expected a term")

    def _parse_tuple_cons(self, position) -> Term:
        self._expect_punct("(")
        items: List[Tuple[Optional[str], Term]] = []
        while True:
            # `name: term` names the field; a bare term is positional.
            if (
                self._peek().kind == "ident"
                and self._peek(1).is_punct(":")
            ):
                field_name = self._advance().text
                self._advance()
                items.append((field_name, self.parse_term()))
            else:
                items.append((None, self.parse_term()))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return TupleCons(position=position, items=tuple(items))

    def _parse_quantifier(self) -> Term:
        position = self._peek().position
        if self._accept_keyword("for"):
            self._expect_keyword("all")
            universal = True
        else:
            self._expect_keyword("exists")
            universal = False
        self._expect_punct("(")
        variables: List[Tuple[str, Sort]] = []
        while True:
            names = [self._expect_ident("variable name").text]
            while (
                self._peek().is_punct(",")
                and self._peek(1).kind == "ident"
                and (self._peek(2).is_punct(",") or self._peek(2).is_punct(":"))
            ):
                self._advance()
                names.append(self._expect_ident("variable name").text)
            self._expect_punct(":")
            sort = self._parse_sort()
            variables.extend((n, sort) for n in names)
            if not self._accept_punct(","):
                break
        body: Term
        if self._accept_punct(":"):
            # Attached body: for all(P: PERSON : φ)
            body = self.parse_term()
            self._expect_punct(")")
        else:
            # Detached body: exists(s1: integer) φ
            self._expect_punct(")")
            body = self.parse_term()
        cls = Forall if universal else Exists
        return cls(position=position, variables=tuple(variables), body=body)

    def _parse_ident_primary(self) -> Term:
        token = self._advance()
        position = token.position
        name = token.text

        if name in ("select", "project") and self._peek().is_punct("["):
            return self._parse_query_op(name, position)
        if self._peek().is_punct("("):
            self._advance()
            args: List[Term] = []
            if not self._accept_punct(")"):
                args.append(self.parse_term())
                while self._accept_punct(","):
                    args.append(self.parse_term())
                self._expect_punct(")")
            return Apply(position=position, op=name, args=tuple(args))
        return Var(position=position, name=name)

    def _parse_query_op(self, op: str, position) -> Term:
        self._expect_punct("[")
        if op == "project":
            fields = [self._expect_ident("field name").text]
            while self._accept_punct(","):
                fields.append(self._expect_ident("field name").text)
            param: object = tuple(fields)
        else:
            param = self.parse_term()
        self._expect_punct("]")
        self._expect_punct("(")
        source = self.parse_term()
        self._expect_punct(")")
        return QueryOp(position=position, op=op, param=param, source=source)


# ----------------------------------------------------------------------
# Term-to-formula conversion
# ----------------------------------------------------------------------

def term_to_formula(term: Term) -> Formula:
    """Convert a parsed term into a temporal formula.

    The term grammar treats ``sometime``/``always``/``after``/``since``
    as function applications; this pass rebuilds the temporal structure
    and wraps everything else as a :class:`StateProp`.
    """
    if isinstance(term, Apply):
        if term.op == "sometime" and len(term.args) == 1:
            return Sometime(position=term.position, body=term_to_formula(term.args[0]))
        if term.op == "always" and len(term.args) == 1:
            return Always(position=term.position, body=term_to_formula(term.args[0]))
        if term.op == "since" and len(term.args) == 2:
            return Since(
                position=term.position,
                hold=term_to_formula(term.args[0]),
                anchor=term_to_formula(term.args[1]),
            )
        if term.op == "after" and len(term.args) == 1:
            return After(position=term.position, pattern=_event_pattern(term.args[0]))
        if term.op == "and" and len(term.args) == 2:
            return AndF(
                position=term.position,
                left=term_to_formula(term.args[0]),
                right=term_to_formula(term.args[1]),
            )
        if term.op == "or" and len(term.args) == 2:
            return OrF(
                position=term.position,
                left=term_to_formula(term.args[0]),
                right=term_to_formula(term.args[1]),
            )
        if term.op == "implies" and len(term.args) == 2:
            return ImpliesF(
                position=term.position,
                left=term_to_formula(term.args[0]),
                right=term_to_formula(term.args[1]),
            )
        if term.op == "not" and len(term.args) == 1:
            return NotF(position=term.position, body=term_to_formula(term.args[0]))
    if isinstance(term, Forall):
        return ForallF(
            position=term.position,
            variables=term.variables,
            body=term_to_formula(term.body),
        )
    if isinstance(term, Exists):
        return ExistsF(
            position=term.position,
            variables=term.variables,
            body=term_to_formula(term.body),
        )
    return StateProp(position=term.position, term=term)


def _event_pattern(term: Term) -> EventPattern:
    """Extract the event pattern inside ``after(...)``."""
    if isinstance(term, Apply) and term.op.isidentifier():
        return EventPattern(event=term.op, args=term.args)
    if isinstance(term, Var):
        return EventPattern(event=term.name)
    raise ParseError(
        f"after(...) expects an event pattern, got {term}", term.position
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def parse_specification(text: str, source: str = "<string>") -> ast.Specification:
    """Parse a complete specification document."""
    return Parser(tokenize(text, source)).parse_specification()


def parse_term(text: str, source: str = "<term>") -> Term:
    """Parse a standalone data-valued term (tests, derivation helpers)."""
    parser = Parser(tokenize(text, source))
    term = parser.parse_term()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError(f"unexpected trailing input {trailing}", trailing.position)
    return term


def parse_formula(text: str, source: str = "<formula>") -> Formula:
    """Parse a standalone temporal formula."""
    return term_to_formula(parse_term(text, source))
