"""The TROLL language front end.

This package implements a concrete syntax for TROLL covering every
listing in the paper -- object classes (identification, attributes,
events, valuation, permissions, constraints, components, inheriting,
interaction), single objects, interface classes (encapsulating,
selection, derivation rules, calling) and global interactions -- plus a
static checker.

Pipeline::

    text --lexer--> tokens --parser--> Specification (AST)
         --checker--> CheckedSpecification (resolved, sorted)

ASCII spellings are accepted alongside the paper's typography: ``=>``
for ``⇒``, ``>=`` for ``≥``, ``<=`` for ``≤``, ``--`` starts a line
comment, ``(*`` ... ``*)`` a block comment.
"""

from repro.lang.lexer import Lexer, Token, tokenize
from repro.lang.parser import parse_formula, parse_specification, parse_term
from repro.lang import ast
from repro.lang.checker import CheckedSpecification, check_specification
from repro.lang.printer import print_specification, print_term

__all__ = [
    "CheckedSpecification",
    "Lexer",
    "Token",
    "ast",
    "check_specification",
    "parse_formula",
    "parse_specification",
    "parse_term",
    "print_specification",
    "print_term",
    "tokenize",
]
