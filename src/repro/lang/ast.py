"""Abstract syntax of TROLL specifications.

The nodes here mirror the paper's concrete syntax one-to-one: an
:class:`ObjectClassDecl` is the ``object class ... end object class``
construct with its ``identification`` and ``template`` sections, an
:class:`InterfaceClassDecl` is the ``interface class ... encapsulating``
construct, and so on.  Data-valued expressions inside rules reuse the
term AST of :mod:`repro.datatypes.terms`; permission formulas reuse the
temporal AST of :mod:`repro.temporal.formulas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.datatypes.sorts import Sort
from repro.datatypes.terms import Term
from repro.diagnostics import SourcePosition
from repro.temporal.formulas import Formula


@dataclass(frozen=True)
class Node:
    """Base class of specification AST nodes."""

    position: Optional[SourcePosition] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VariableDecl(Node):
    """``P: PERSON`` inside a ``variables`` clause."""

    name: str = ""
    sort: Sort = None  # type: ignore[assignment]


@dataclass(frozen=True)
class AttributeDecl(Node):
    """An attribute of the object signature.

    ``IncomeInYear(integer): money`` declares a *parametrized* attribute
    (one observation per parameter tuple); ``derived`` attributes take
    their value from a derivation rule instead of valuation rules.  A
    missing result sort (``derived Salary;`` in the EMPL_IMPL listing)
    is recorded as ``None`` and inferred by the checker.
    """

    name: str = ""
    param_sorts: Tuple[Sort, ...] = ()
    sort: Optional[Sort] = None
    derived: bool = False
    constant: bool = False
    hidden: bool = False
    initial: Optional[Term] = None


@dataclass(frozen=True)
class ComponentDecl(Node):
    """A component slot of a complex object.

    ``depts : LIST(DEPT)`` -- ``container`` is ``"list"``, ``"set"``,
    ``"map"`` or ``None`` for a single-object component; ``target`` is
    the component class name.
    """

    name: str = ""
    container: Optional[str] = None
    target: str = ""


@dataclass(frozen=True)
class QualifiedEventName(Node):
    """A reference to an event of another object: ``PERSON.become_manager``
    (in the MANAGER listing's birth-event binding)."""

    object_name: str = ""
    event_name: str = ""


@dataclass(frozen=True)
class EventDecl(Node):
    """An event of the object signature.

    ``kind`` is ``"normal"``, ``"birth"`` or ``"death"``; ``derived``
    events are defined by calling rules rather than occurring freely;
    ``active`` events may occur on the object's own initiative;
    ``binding`` carries the base-object event a role's event is
    identified with (``birth PERSON.become_manager;``).
    """

    name: str = ""
    param_sorts: Tuple[Sort, ...] = ()
    kind: str = "normal"
    derived: bool = False
    active: bool = False
    #: hidden events occur only through event calling, never through the
    #: public occur() API
    hidden: bool = False
    binding: Optional[QualifiedEventName] = None


@dataclass(frozen=True)
class Qualifier(Node):
    """The target-object part of a qualified event reference.

    ``DEPT(D)`` -- ``name="DEPT"``, ``key`` the identity term;
    ``employees`` (a component or inherited-base alias) -- ``key=None``.
    """

    name: str = ""
    key: Optional[Term] = None


@dataclass(frozen=True)
class EventRef(Node):
    """An event term: optionally qualified name plus argument terms."""

    qualifier: Optional[Qualifier] = None
    name: str = ""
    args: Tuple[Term, ...] = ()

    def __str__(self) -> str:
        prefix = ""
        if self.qualifier is not None:
            prefix = self.qualifier.name
            if self.qualifier.key is not None:
                prefix += f"({self.qualifier.key})"
            prefix += "."
        inner = ", ".join(str(a) for a in self.args)
        suffix = f"({inner})" if self.args else ""
        return f"{prefix}{self.name}{suffix}"


@dataclass(frozen=True)
class ValuationRule(Node):
    """``{guard} => [event] attribute = expr;``

    The guard and the right-hand side are evaluated in the state *before*
    the occurrence ("a data-valued term evaluated before the event
    occurrence which determines the new attribute value").
    """

    variables: Tuple[VariableDecl, ...] = ()
    guard: Optional[Term] = None
    event: EventRef = None  # type: ignore[assignment]
    attribute: str = ""
    attribute_args: Tuple[Term, ...] = ()
    expr: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class PermissionRule(Node):
    """``{ formula } event;`` -- the event is admissible only in states
    whose history satisfies the (past-temporal) formula."""

    variables: Tuple[VariableDecl, ...] = ()
    formula: Formula = None  # type: ignore[assignment]
    event: EventRef = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ConstraintDecl(Node):
    """``static Salary >= 5000;`` -- ``kind`` is ``"static"`` (must hold
    in every state) or ``"initially"`` (must hold at birth)."""

    kind: str = "static"
    formula: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class DerivationRule(Node):
    """``attribute = expr;`` -- defines a derived attribute's value."""

    attribute: str = ""
    params: Tuple[str, ...] = ()
    expr: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CallingRule(Node):
    """``trigger >> target;`` or ``trigger >> (e1; e2; ...);``

    Event calling: the occurrence of ``trigger`` forces the synchronous
    occurrence of the targets.  A parenthesised sequence is a
    *transaction call* ([SE90]): the targets occur as one atomic unit.
    """

    variables: Tuple[VariableDecl, ...] = ()
    guard: Optional[Term] = None
    trigger: EventRef = None  # type: ignore[assignment]
    targets: Tuple[EventRef, ...] = ()
    atomic: bool = False


@dataclass(frozen=True)
class ObligationDecl(Node):
    """``obligations e1; e2;`` -- liveness: each listed event must have
    occurred (with any arguments) before the object may die.

    The paper names "liveness requirements (i.e. goals to be achieved by
    the object in an active way)" among TROLL's features without showing
    syntax; this is the executable reading: obligations strengthen the
    permission of every death event by ``sometime(after(e))``.
    """

    event: str = ""


@dataclass(frozen=True)
class InheritingDecl(Node):
    """``inheriting emp_rel as employees;`` -- incorporation of a base
    object under a local alias (Section 5.2)."""

    base_object: str = ""
    alias: str = ""


@dataclass(frozen=True)
class TemplateDecl(Node):
    """The ``template`` section: the structure/behaviour pattern."""

    data_types: Tuple[Sort, ...] = ()
    inheriting: Tuple[InheritingDecl, ...] = ()
    attributes: Tuple[AttributeDecl, ...] = ()
    components: Tuple[ComponentDecl, ...] = ()
    events: Tuple[EventDecl, ...] = ()
    valuation: Tuple[ValuationRule, ...] = ()
    permissions: Tuple[PermissionRule, ...] = ()
    constraints: Tuple[ConstraintDecl, ...] = ()
    derivation_rules: Tuple[DerivationRule, ...] = ()
    interactions: Tuple[CallingRule, ...] = ()
    obligations: Tuple[ObligationDecl, ...] = ()
    #: explicit life-cycle protocols (``behavior patterns (...)``);
    #: each entry is an alternative pattern (repro.lang.patterns)
    behavior_patterns: Tuple[object, ...] = ()


@dataclass(frozen=True)
class IdentificationDecl(Node):
    """The ``identification`` section: the key attributes whose values
    form object identities (declared "analogously to database keys")."""

    data_types: Tuple[Sort, ...] = ()
    attributes: Tuple[AttributeDecl, ...] = ()


@dataclass(frozen=True)
class ObjectClassDecl(Node):
    """``object class NAME ... end object class NAME;``

    ``view_of`` names the base class when this class is a specialization
    or phase (``view of PERSON;`` in the MANAGER listing).
    """

    name: str = ""
    identification: IdentificationDecl = field(default_factory=IdentificationDecl)
    view_of: Optional[str] = None
    template: TemplateDecl = field(default_factory=TemplateDecl)


@dataclass(frozen=True)
class ObjectDecl(Node):
    """``object NAME ... end object NAME;`` -- a single named object."""

    name: str = ""
    template: TemplateDecl = field(default_factory=TemplateDecl)


@dataclass(frozen=True)
class EncapsulationDecl(Node):
    """One entry of an interface's ``encapsulating`` list; the alias is
    the join-view variable (``PERSON P``)."""

    class_name: str = ""
    alias: Optional[str] = None


@dataclass(frozen=True)
class InterfaceClassDecl(Node):
    """``interface class NAME encapsulating ... end interface class``.

    Projection is expressed by re-listing the visible attributes and
    events; ``derived`` members get their meaning from the derivation
    rules / calling section; ``selection`` restricts the visible
    subpopulation.
    """

    name: str = ""
    encapsulating: Tuple[EncapsulationDecl, ...] = ()
    selection: Optional[Term] = None
    attributes: Tuple[AttributeDecl, ...] = ()
    events: Tuple[EventDecl, ...] = ()
    derivation_rules: Tuple[DerivationRule, ...] = ()
    callings: Tuple[CallingRule, ...] = ()


@dataclass(frozen=True)
class GlobalInteractionsDecl(Node):
    """``global interactions`` -- event-calling rules between classes."""

    variables: Tuple[VariableDecl, ...] = ()
    rules: Tuple[CallingRule, ...] = ()


@dataclass(frozen=True)
class Specification(Node):
    """A parsed specification document."""

    object_classes: Tuple[ObjectClassDecl, ...] = ()
    objects: Tuple[ObjectDecl, ...] = ()
    interfaces: Tuple[InterfaceClassDecl, ...] = ()
    global_interactions: Tuple[GlobalInteractionsDecl, ...] = ()

    def class_by_name(self) -> Dict[str, ObjectClassDecl]:
        return {c.name: c for c in self.object_classes}

    def object_by_name(self) -> Dict[str, ObjectDecl]:
        return {o.name: o for o in self.objects}

    def interface_by_name(self) -> Dict[str, InterfaceClassDecl]:
        return {i.name: i for i in self.interfaces}

    def merged_with(self, other: "Specification") -> "Specification":
        """A specification containing both documents' declarations."""
        return Specification(
            object_classes=self.object_classes + other.object_classes,
            objects=self.objects + other.objects,
            interfaces=self.interfaces + other.interfaces,
            global_interactions=self.global_interactions + other.global_interactions,
        )
