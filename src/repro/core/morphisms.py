"""Template and aspect morphisms.

A template morphism ``h : t -> u`` is a structure- and
behaviour-preserving map between templates ([ES91]; Section 3 uses the
special case of a *template projection*, projecting ``t`` onto a portion
``u`` -- an abstraction (computer -> el_device) or a part
(computer -> cpu)).

Concretely, the morphism maps items of ``t`` to items of ``u``:
``h`` maps ``switch_on_c`` to ``switch_on``, "expressing that the
switch_on_c of the computer *is* the switch_on inherited from
el_device" (Example 3.4).  The morphisms of interest are *surjective* --
every item of the target is hit.

Behaviour preservation is checked (when both templates carry protocols)
by :func:`repro.core.behavior.simulate_containment`: the source's
behaviour, with actions renamed through the morphism, must be admitted
by the target.

An :class:`AspectMorphism` is "nothing else but a template morphism with
identities attached"; the identities decide its kind: equal identities
make it an **inheritance morphism**, different identities an
**interaction morphism**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.diagnostics import TrollError
from repro.core.aspects import Aspect
from repro.core.behavior import simulate_containment
from repro.core.templates import Template


class MorphismError(TrollError):
    """An ill-formed morphism (non-total/non-surjective map, unknown
    items, behaviour violation)."""


@dataclass(frozen=True)
class TemplateMorphism:
    """``h : source -> target`` with an explicit item map.

    ``action_map`` / ``observation_map`` send source items to target
    items.  Items of the source outside the maps are *local* to the
    source (the richer template may have items the portion lacks);
    surjectivity onto the target is required by :meth:`validate` --
    "the inheritance morphisms of interest seem to be surjective in the
    sense that all items of both partners are involved".
    """

    name: str
    source: Template
    target: Template
    action_map: Dict[str, str] = field(default_factory=dict)
    observation_map: Dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.name}: {self.source} -> {self.target}"

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------

    def validate(self, require_surjective: bool = True, check_behavior: bool = True) -> "TemplateMorphism":
        """Validate the morphism; returns self for chaining.

        Raises :class:`MorphismError` when a mapped item does not exist
        on either side, when the map is not surjective onto the target
        (unless ``require_surjective`` is false), or when both templates
        carry protocols and behaviour containment fails (unless
        ``check_behavior`` is false).
        """
        for src, dst in self.action_map.items():
            if src not in self.source.actions:
                raise MorphismError(
                    f"{self}: source has no action {src!r}"
                )
            if dst not in self.target.actions:
                raise MorphismError(
                    f"{self}: target has no action {dst!r}"
                )
        for src, dst in self.observation_map.items():
            if src not in self.source.observations:
                raise MorphismError(
                    f"{self}: source has no observation {src!r}"
                )
            if dst not in self.target.observations:
                raise MorphismError(
                    f"{self}: target has no observation {dst!r}"
                )
        if require_surjective and not self.is_surjective():
            missing_actions = set(self.target.actions) - set(self.action_map.values())
            missing_observations = set(self.target.observations) - set(
                self.observation_map.values()
            )
            raise MorphismError(
                f"{self}: not surjective; unreached target items "
                f"{sorted(missing_actions | missing_observations)}"
            )
        if check_behavior and not self.preserves_behavior():
            raise MorphismError(f"{self}: behaviour containment fails")
        return self

    def is_surjective(self) -> bool:
        """Every target item is the image of some source item."""
        return set(self.action_map.values()) >= set(self.target.actions) and set(
            self.observation_map.values()
        ) >= set(self.target.observations)

    def preserves_behavior(self) -> bool:
        """Behaviour containment, trivially true without protocols."""
        if self.source.protocol is None or self.target.protocol is None:
            return True
        return simulate_containment(
            self.source.protocol, self.target.protocol, self.action_map
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def map_action(self, name: str) -> Optional[str]:
        return self.action_map.get(name)

    def map_observation(self, name: str) -> Optional[str]:
        return self.observation_map.get(name)

    @classmethod
    def by_name(cls, name: str, source: Template, target: Template) -> "TemplateMorphism":
        """The morphism identifying equally-named items -- the common
        case when a specialization re-uses the base's item names."""
        return cls(
            name=name,
            source=source,
            target=target,
            action_map={a: a for a in target.actions if a in source.actions},
            observation_map={
                o: o for o in target.observations if o in source.observations
            },
        )


def identity_morphism(template: Template) -> TemplateMorphism:
    """The identity morphism on ``template``."""
    return TemplateMorphism(
        name=f"id_{template.name}",
        source=template,
        target=template,
        action_map={a: a for a in template.actions},
        observation_map={o: o for o in template.observations},
    )


def compose(outer: TemplateMorphism, inner: TemplateMorphism) -> TemplateMorphism:
    """``outer ∘ inner``: first ``inner`` (t -> u), then ``outer``
    (u -> v)."""
    if inner.target is not outer.source and inner.target != outer.source:
        raise MorphismError(
            f"cannot compose {outer} after {inner}: middle templates differ"
        )
    action_map = {
        src: outer.action_map[mid]
        for src, mid in inner.action_map.items()
        if mid in outer.action_map
    }
    observation_map = {
        src: outer.observation_map[mid]
        for src, mid in inner.observation_map.items()
        if mid in outer.observation_map
    }
    return TemplateMorphism(
        name=f"{outer.name}∘{inner.name}",
        source=inner.source,
        target=outer.target,
        action_map=action_map,
        observation_map=observation_map,
    )


@dataclass(frozen=True)
class AspectMorphism:
    """``h : a•t -> b•u`` -- a template morphism with identities attached.

    ``kind`` distinguishes the two fundamental cases: **inheritance**
    (equal identities -- one object in two of its aspects) and
    **interaction** (different identities -- e.g. part-of, sharing).
    """

    source: Aspect
    target: Aspect
    template_morphism: TemplateMorphism

    def __post_init__(self) -> None:
        if self.template_morphism.source != self.source.template:
            raise MorphismError(
                f"aspect morphism source template mismatch: "
                f"{self.source.template} vs {self.template_morphism.source}"
            )
        if self.template_morphism.target != self.target.template:
            raise MorphismError(
                f"aspect morphism target template mismatch: "
                f"{self.target.template} vs {self.template_morphism.target}"
            )

    @property
    def kind(self) -> str:
        if self.source.same_object_as(self.target):
            return "inheritance"
        return "interaction"

    @property
    def is_inheritance(self) -> bool:
        return self.kind == "inheritance"

    @property
    def is_interaction(self) -> bool:
        return self.kind == "interaction"

    def __str__(self) -> str:
        return f"{self.template_morphism.name}: {self.source} -> {self.target}"
