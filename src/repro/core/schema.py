"""Inheritance schemas: diagrams of templates and inheritance morphisms.

"An inheritance schema is a diagram consisting of a collection of
templates related by inheritance schema morphisms" (Section 3).  The
schema is grown step by step:

* **specialization** -- the source template is new (``h : t -> u`` with
  ``u`` already present): top-down growth, adding detail;
* **abstraction** -- the target template is new: upward growth, hiding
  detail;
* **multiple inheritance** -- one new template specialized from several
  existing ones simultaneously (Example 3.5: computer from el_device and
  calculator);
* **generalization** -- one new template abstracting several existing
  ones (Example 3.6: contract_partner from person and company).

Given an aspect ``b • t``, :meth:`InheritanceSchema.derived_aspects`
computes "all aspects obtained by relating the same identity b to all
derived aspects t'" -- the closure along schema morphisms, which is what
makes an aspect into a full *object*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.aspects import Aspect
from repro.core.morphisms import MorphismError, TemplateMorphism, compose
from repro.core.templates import Template


@dataclass
class InheritanceSchema:
    """A DAG of templates connected by inheritance schema morphisms."""

    templates: Dict[str, Template] = field(default_factory=dict)
    #: morphisms indexed by source template name
    morphisms: List[TemplateMorphism] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction steps
    # ------------------------------------------------------------------

    def add_template(self, template: Template) -> Template:
        existing = self.templates.get(template.name)
        if existing is not None and existing is not template:
            raise MorphismError(
                f"schema already contains a template named {template.name!r}"
            )
        self.templates[template.name] = template
        return template

    def add_morphism(self, morphism: TemplateMorphism, validate: bool = True) -> TemplateMorphism:
        """Connect two templates (both must already be in the schema)."""
        for side in (morphism.source, morphism.target):
            if side.name not in self.templates:
                raise MorphismError(
                    f"{morphism}: template {side.name!r} is not in the schema"
                )
        if validate:
            morphism.validate()
        self.morphisms.append(morphism)
        if self._has_cycle():
            self.morphisms.pop()
            raise MorphismError(f"{morphism}: would create an inheritance cycle")
        return morphism

    def specialize(
        self, new: Template, *bases: Template, morphisms: Optional[Iterable[TemplateMorphism]] = None
    ) -> List[TemplateMorphism]:
        """Add ``new`` as a specialization of ``bases`` (multiple
        inheritance when several bases are given)."""
        if not bases:
            raise MorphismError("specialize needs at least one base template")
        self.add_template(new)
        added: List[TemplateMorphism] = []
        supplied = list(morphisms) if morphisms is not None else None
        for index, base in enumerate(bases):
            if supplied is not None:
                morphism = supplied[index]
            else:
                morphism = TemplateMorphism.by_name(
                    f"{new.name}_is_{base.name}", new, base
                )
            added.append(self.add_morphism(morphism))
        return added

    def abstract(
        self, new: Template, *concretes: Template, morphisms: Optional[Iterable[TemplateMorphism]] = None
    ) -> List[TemplateMorphism]:
        """Add ``new`` as an abstraction of ``concretes`` (generalization
        when several are given)."""
        if not concretes:
            raise MorphismError("abstract needs at least one concrete template")
        self.add_template(new)
        added: List[TemplateMorphism] = []
        supplied = list(morphisms) if morphisms is not None else None
        for index, concrete in enumerate(concretes):
            if supplied is not None:
                morphism = supplied[index]
            else:
                morphism = TemplateMorphism.by_name(
                    f"{concrete.name}_is_{new.name}", concrete, new
                )
            added.append(self.add_morphism(morphism))
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def outgoing(self, template: Template) -> List[TemplateMorphism]:
        return [m for m in self.morphisms if m.source == template]

    def incoming(self, template: Template) -> List[TemplateMorphism]:
        return [m for m in self.morphisms if m.target == template]

    def ancestors(self, template: Template) -> List[Template]:
        """Templates reachable along schema morphisms (the more abstract
        aspects every instance of ``template`` also has)."""
        result: List[Template] = []
        seen: Set[str] = {template.name}
        frontier = [template]
        while frontier:
            current = frontier.pop(0)
            for morphism in self.outgoing(current):
                target = morphism.target
                if target.name not in seen:
                    seen.add(target.name)
                    result.append(target)
                    frontier.append(target)
        return result

    def descendants(self, template: Template) -> List[Template]:
        result: List[Template] = []
        seen: Set[str] = {template.name}
        frontier = [template]
        while frontier:
            current = frontier.pop(0)
            for morphism in self.incoming(current):
                source = morphism.source
                if source.name not in seen:
                    seen.add(source.name)
                    result.append(source)
                    frontier.append(source)
        return result

    def path_morphism(self, source: Template, target: Template) -> Optional[TemplateMorphism]:
        """The composite morphism along a path from ``source`` up to
        ``target``, or None if ``target`` is not an ancestor."""
        if source == target:
            from repro.core.morphisms import identity_morphism

            return identity_morphism(source)
        for morphism in self.outgoing(source):
            if morphism.target == target:
                return morphism
            rest = self.path_morphism(morphism.target, target)
            if rest is not None:
                return compose(rest, morphism)
        return None

    def is_ancestor(self, ancestor: Template, descendant: Template) -> bool:
        return ancestor in self.ancestors(descendant)

    def derived_aspects(self, base: Aspect) -> List[Aspect]:
        """All aspects of ``base``'s object induced by the schema:
        the same identity under every ancestor template."""
        return [base.with_template(t) for t in self.ancestors(base.template)]

    def object_of(self, base: Aspect) -> List[Aspect]:
        """The full object ``base`` determines: the aspect itself plus
        all derived aspects ("an object is an aspect together with all
        its derived aspects")."""
        return [base] + self.derived_aspects(base)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _has_cycle(self) -> bool:
        graph: Dict[str, List[str]] = {name: [] for name in self.templates}
        for morphism in self.morphisms:
            graph[morphism.source.name].append(morphism.target.name)
        state: Dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for succ in graph.get(node, ()):
                mark = state.get(succ, 0)
                if mark == 1:
                    return True
                if mark == 0 and visit(succ):
                    return True
            state[node] = 2
            return False

        return any(state.get(n, 0) == 0 and visit(n) for n in graph)
