"""Templates: structure and behaviour patterns without identity.

"By template we mean an object's structure and behavior pattern without
individual identity" (Section 3).  A :class:`Template` bundles

* *actions* (the event alphabet -- abstractions of methods),
* *observations* (the attribute alphabet), and
* an optional behaviour *protocol* (an :class:`~repro.core.behavior.LTS`
  over the action names).

Templates are the objects of the category in which template morphisms
(:mod:`repro.core.morphisms`) are the arrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.datatypes.sorts import ANY, Sort
from repro.core.behavior import LTS


@dataclass(frozen=True)
class ActionItem:
    """An action (event) of a template's signature."""

    name: str
    param_sorts: Tuple[Sort, ...] = ()
    kind: str = "normal"  # "normal" | "birth" | "death"

    def __str__(self) -> str:
        params = ", ".join(str(s) for s in self.param_sorts)
        return f"{self.name}({params})" if params else self.name


@dataclass(frozen=True)
class ObservationItem:
    """An observation (attribute) of a template's signature."""

    name: str
    sort: Sort = ANY
    param_sorts: Tuple[Sort, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}: {self.sort}"


@dataclass
class Template:
    """A structure/behaviour pattern.

    Attributes:
        name: The template's (anonymous-in-theory, practical-in-code)
            label, e.g. ``"computer"``.
        actions: Action name -> :class:`ActionItem`.
        observations: Observation name -> :class:`ObservationItem`.
        protocol: Optional behaviour LTS over the action names.
    """

    name: str
    actions: Dict[str, ActionItem] = field(default_factory=dict)
    observations: Dict[str, ObservationItem] = field(default_factory=dict)
    protocol: Optional[LTS] = None

    def __post_init__(self) -> None:
        if self.protocol is not None:
            unknown = self.protocol.actions - set(self.actions)
            if unknown:
                raise ValueError(
                    f"template {self.name!r}: protocol uses undeclared "
                    f"actions {sorted(unknown)}"
                )

    @classmethod
    def build(
        cls,
        name: str,
        actions: Iterable[str] = (),
        observations: Iterable[str] = (),
        protocol: Optional[LTS] = None,
    ) -> "Template":
        """Convenience constructor from bare item names."""
        return cls(
            name=name,
            actions={a: ActionItem(name=a) for a in actions},
            observations={o: ObservationItem(name=o) for o in observations},
            protocol=protocol,
        )

    @property
    def item_names(self) -> frozenset:
        return frozenset(self.actions) | frozenset(self.observations)

    def has_item(self, name: str) -> bool:
        return name in self.actions or name in self.observations

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Template):
            return NotImplemented
        return self.name == other.name

    def __str__(self) -> str:
        return self.name
