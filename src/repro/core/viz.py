"""Graph export: inheritance schemas and communities as DOT.

The paper closes with "graphical notations for TROLL" as further work
(Section 7).  This module provides the structural half: Graphviz DOT
renderings of

* an :class:`~repro.core.schema.InheritanceSchema` -- templates as
  nodes, inheritance schema morphisms as upward edges (the Example 3.2
  diagram, machine-drawn);
* an :class:`~repro.core.community.ObjectCommunity` -- aspects as
  nodes, inheritance morphisms dashed, interaction morphisms solid,
  shared parts highlighted;
* a checked specification -- classes with their view-of edges and
  component/incorporation edges.

The output is plain DOT text (no Graphviz dependency); render with
``dot -Tsvg``.
"""

from __future__ import annotations

from typing import List

from repro.core.community import ObjectCommunity
from repro.core.schema import InheritanceSchema
from repro.lang.checker import CheckedSpecification


def _quote(name: object) -> str:
    text = str(name).replace('"', '\\"')
    return f'"{text}"'


def schema_to_dot(schema: InheritanceSchema, name: str = "inheritance") -> str:
    """Render an inheritance schema (morphism arrows point to the more
    abstract template, as in the paper's Example 3.2 with 'the morphisms
    go upward')."""
    lines: List[str] = [
        f"digraph {_quote(name)} {{",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for template_name in sorted(schema.templates):
        lines.append(f"  {_quote(template_name)};")
    for morphism in schema.morphisms:
        label = _quote(morphism.name)
        lines.append(
            f"  {_quote(morphism.source.name)} -> {_quote(morphism.target.name)}"
            f" [label={label}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def community_to_dot(community: ObjectCommunity, name: str = "community") -> str:
    """Render an object community: aspects grouped by identity,
    inheritance morphisms dashed, interactions solid, shared parts
    double-bordered."""
    shared = {diagram.shared for diagram in community.sharing_diagrams()}
    lines: List[str] = [
        f"digraph {_quote(name)} {{",
        "  rankdir=LR;",
        '  node [shape=ellipse, fontname="Helvetica"];',
    ]
    for index, (identity, aspects) in enumerate(sorted(
        community.objects().items(), key=lambda kv: str(kv[0])
    )):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(identity)};")
        for aspect in aspects:
            attrs = ["peripheries=2"] if aspect in shared else []
            attr_text = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f"    {_quote(aspect)}{attr_text};")
        lines.append("  }")
    for morphism in community.morphisms:
        style = "dashed" if morphism.is_inheritance else "solid"
        lines.append(
            f"  {_quote(morphism.source)} -> {_quote(morphism.target)}"
            f" [style={style}, label={_quote(morphism.template_morphism.name)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def specification_to_dot(
    checked: CheckedSpecification, name: str = "specification"
) -> str:
    """Render a checked specification's class diagram: classes and
    single objects as nodes, ``view of`` edges dashed-up, component
    slots and ``inheriting`` incorporations as labelled edges,
    interfaces as dotted boxes pointing at what they encapsulate."""
    lines: List[str] = [
        f"digraph {_quote(name)} {{",
        "  rankdir=BT;",
        '  node [shape=record, fontname="Helvetica"];',
    ]
    for class_name, info in sorted(checked.classes.items()):
        kind = "object" if info.kind == "object" else "class"
        attrs = ", ".join(sorted(info.attributes)[:6])
        label = _quote(f"{class_name}\\n({kind})\\n{attrs}")
        lines.append(f"  {_quote(class_name)} [label={label}];")
    for class_name, info in sorted(checked.classes.items()):
        if info.base is not None:
            lines.append(
                f"  {_quote(class_name)} -> {_quote(info.base)}"
                ' [style=dashed, label="view of"];'
            )
        for component in info.components.values():
            container = f" [{component.container}]" if component.container else ""
            lines.append(
                f"  {_quote(class_name)} -> {_quote(component.target)}"
                f" [label={_quote(component.name + container)}, arrowhead=diamond];"
            )
        for alias, base in sorted(info.inheriting.items()):
            lines.append(
                f"  {_quote(class_name)} -> {_quote(base)}"
                f" [label={_quote('inheriting as ' + alias)}, arrowhead=odiamond];"
            )
    for interface_name, interface in sorted(checked.interfaces.items()):
        lines.append(
            f"  {_quote(interface_name)} [shape=box, style=dotted];"
        )
        for class_name in interface.encapsulating.values():
            lines.append(
                f"  {_quote(interface_name)} -> {_quote(class_name)}"
                ' [style=dotted, label="encapsulates"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
