"""Behaviour as labelled transition systems.

The paper models templates as *processes* [ES91]; for the finite
examples it discusses, a labelled transition system (LTS) is an adequate
concrete process representation.  Example 3.4 expects that "a computer's
behaviour *contains* that of an el_device: also a computer is bound to
the protocol of switching on before being able to switch off" --
:func:`simulate_containment` makes that containment checkable: the
source behaviour, with its actions renamed through a (partial) action
map and unmapped actions read as stuttering steps, must be simulated by
the target behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple


@dataclass
class LTS:
    """A finite labelled transition system.

    Transitions are stored as ``state -> action -> {successor states}``;
    nondeterminism is allowed.
    """

    initial: str = "init"
    transitions: Dict[str, Dict[str, Set[str]]] = field(default_factory=dict)

    def add_transition(self, source: str, action: str, target: str) -> "LTS":
        self.transitions.setdefault(source, {}).setdefault(action, set()).add(target)
        self.transitions.setdefault(target, {})
        return self

    @property
    def states(self) -> Set[str]:
        found = {self.initial}
        for source, moves in self.transitions.items():
            found.add(source)
            for targets in moves.values():
                found |= targets
        return found

    @property
    def actions(self) -> Set[str]:
        result: Set[str] = set()
        for moves in self.transitions.values():
            result |= set(moves)
        return result

    def successors(self, state: str, action: str) -> Set[str]:
        return self.transitions.get(state, {}).get(action, set())

    def enabled(self, state: str) -> Set[str]:
        return set(self.transitions.get(state, {}))

    def traces(self, max_length: int) -> Iterator[Tuple[str, ...]]:
        """All action sequences of length <= ``max_length`` admitted from
        the initial state (including the empty trace)."""
        frontier: List[Tuple[str, Tuple[str, ...]]] = [(self.initial, ())]
        yield ()
        for _ in range(max_length):
            next_frontier: List[Tuple[str, Tuple[str, ...]]] = []
            emitted: Set[Tuple[str, Tuple[str, ...]]] = set()
            for state, trace in frontier:
                for action in sorted(self.enabled(state)):
                    for successor in sorted(self.successors(state, action)):
                        item = (successor, trace + (action,))
                        if item not in emitted:
                            emitted.add(item)
                            next_frontier.append(item)
            for _, trace in next_frontier:
                yield trace
            frontier = next_frontier
            if not frontier:
                return

    def accepts(self, trace: Tuple[str, ...]) -> bool:
        """Is ``trace`` an admissible action sequence from the initial
        state?"""
        current = {self.initial}
        for action in trace:
            current = {
                successor
                for state in current
                for successor in self.successors(state, action)
            }
            if not current:
                return False
        return True


def simulate_containment(
    source: LTS,
    target: LTS,
    action_map: Dict[str, str],
) -> bool:
    """Check that ``source``'s behaviour is contained in ``target``'s.

    ``action_map`` maps source actions to target actions (the item map of
    a template morphism); a source action outside the map is *local* and
    treated as a stuttering step of the target.  The check constructs the
    standard simulation: every reachable pair ``(s, t)`` must allow every
    enabled source action to be answered by the target.
    """
    start = (source.initial, target.initial)
    seen: Set[Tuple[str, str]] = set()
    frontier: List[Tuple[str, str]] = [start]
    while frontier:
        s, t = frontier.pop()
        if (s, t) in seen:
            continue
        seen.add((s, t))
        for action in source.enabled(s):
            mapped = action_map.get(action)
            for s_next in source.successors(s, action):
                if mapped is None:
                    pairs = [(s_next, t)]
                else:
                    targets = target.successors(t, mapped)
                    if not targets:
                        return False
                    pairs = [(s_next, t_next) for t_next in targets]
                for pair in pairs:
                    if pair not in seen:
                        frontier.append(pair)
    return True
