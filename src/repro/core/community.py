"""Object communities: interacting aspects, closed under inheritance.

"When we build an object-oriented system, we must provide an object
community, i.e. a collection of interacting objects" (Section 3).  A
community holds aspects and the aspect morphisms relating them, and is
grown by the two constructions of the paper:

* **incorporation** -- take an existing part and enlarge it: the new
  aspect is the morphism's *source*; the multiple version is
  **aggregation** (Example 3.9: SUN•computer from PXX•powsply and
  CYY•cpu);
* **interfacing** -- create a new abstraction *of* existing objects with
  a new identity: the new aspect is the morphism's *target*; the
  multiple version is **synchronization by sharing** (Example 3.7:
  CYY•cpu -> CBZ•cable <- PXX•powsply).

After connecting a new morphism the community is closed with respect to
the inheritance schema: every aspect derived from a member is added too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.aspects import Aspect
from repro.core.morphisms import AspectMorphism, MorphismError, TemplateMorphism
from repro.core.schema import InheritanceSchema


@dataclass(frozen=True)
class SharingDiagram:
    """A shared part: one aspect that is the target of two (or more)
    interaction morphisms, e.g. ``cpu -> cable <- powsply``."""

    shared: Aspect
    sharers: Tuple[Aspect, ...]

    def __str__(self) -> str:
        arrows = " , ".join(f"{s} ->" for s in self.sharers)
        return f"{arrows} {self.shared}"


@dataclass
class ObjectCommunity:
    """A collection of aspects related by aspect morphisms."""

    schema: Optional[InheritanceSchema] = None
    aspects: List[Aspect] = field(default_factory=list)
    morphisms: List[AspectMorphism] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_aspect(self, aspect: Aspect) -> Aspect:
        """Add an aspect, enforcing identity consistency and closing
        under the inheritance schema."""
        if aspect in self.aspects:
            return aspect
        self.aspects.append(aspect)
        if self.schema is not None:
            for derived in self.schema.derived_aspects(aspect):
                if derived not in self.aspects:
                    self.aspects.append(derived)
                    morphism = self.schema.path_morphism(
                        aspect.template, derived.template
                    )
                    if morphism is not None:
                        self.morphisms.append(
                            AspectMorphism(
                                source=aspect,
                                target=derived,
                                template_morphism=morphism,
                            )
                        )
        return aspect

    def __contains__(self, aspect: Aspect) -> bool:
        return aspect in self.aspects

    # ------------------------------------------------------------------
    # Construction steps
    # ------------------------------------------------------------------

    def incorporate(
        self,
        new: Aspect,
        *parts: Aspect,
        morphisms: Optional[Iterable[TemplateMorphism]] = None,
    ) -> List[AspectMorphism]:
        """Enlarge existing ``parts`` into a ``new`` whole (aggregation
        when several parts are given).

        The interaction morphisms run from the new whole to each part:
        ``f : SUN•computer -> PXX•powsply``.
        """
        if not parts:
            raise MorphismError("incorporate needs at least one part")
        for part in parts:
            if part not in self.aspects:
                raise MorphismError(f"part {part} is not in the community")
        self.add_aspect(new)
        supplied = list(morphisms) if morphisms is not None else None
        added: List[AspectMorphism] = []
        for index, part in enumerate(parts):
            template_morphism = (
                supplied[index]
                if supplied is not None
                else TemplateMorphism.by_name(
                    f"{new.template.name}_has_{part.template.name}",
                    new.template,
                    part.template,
                )
            )
            morphism = AspectMorphism(
                source=new, target=part, template_morphism=template_morphism
            )
            if not morphism.is_interaction:
                raise MorphismError(
                    f"incorporation of {part} into {new} is not an interaction "
                    "(identities coincide)"
                )
            self.morphisms.append(morphism)
            added.append(morphism)
        return added

    #: Aggregation is the multiple version of incorporation.
    aggregate = incorporate

    def interface(
        self,
        new: Aspect,
        *bases: Aspect,
        morphisms: Optional[Iterable[TemplateMorphism]] = None,
    ) -> List[AspectMorphism]:
        """Create ``new`` (with a fresh identity) as an interface over
        existing ``bases`` (synchronization by sharing when several
        bases are given).

        The interaction morphisms run from each base to the new aspect:
        ``CYY•cpu -> CBZ•cable``.
        """
        if not bases:
            raise MorphismError("interface needs at least one base")
        for base in bases:
            if base not in self.aspects:
                raise MorphismError(f"base {base} is not in the community")
        self.add_aspect(new)
        supplied = list(morphisms) if morphisms is not None else None
        added: List[AspectMorphism] = []
        for index, base in enumerate(bases):
            template_morphism = (
                supplied[index]
                if supplied is not None
                else TemplateMorphism.by_name(
                    f"{base.template.name}_shares_{new.template.name}",
                    base.template,
                    new.template,
                )
            )
            morphism = AspectMorphism(
                source=base, target=new, template_morphism=template_morphism
            )
            if not morphism.is_interaction:
                raise MorphismError(
                    f"interfacing {new} over {base} is not an interaction "
                    "(identities coincide)"
                )
            self.morphisms.append(morphism)
            added.append(morphism)
        return added

    #: Synchronization by sharing is the multiple version of interfacing.
    synchronize = interface

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def objects(self) -> Dict[object, List[Aspect]]:
        """Group the community's aspects into objects by identity payload
        ("all aspects of one object have the same identity")."""
        grouped: Dict[object, List[Aspect]] = {}
        for aspect in self.aspects:
            grouped.setdefault(aspect.identity.payload, []).append(aspect)
        return grouped

    def inheritance_morphisms(self) -> List[AspectMorphism]:
        return [m for m in self.morphisms if m.is_inheritance]

    def interaction_morphisms(self) -> List[AspectMorphism]:
        return [m for m in self.morphisms if m.is_interaction]

    def parts_of(self, whole: Aspect) -> List[Aspect]:
        """Aspects incorporated into ``whole`` (interaction targets)."""
        return [
            m.target
            for m in self.morphisms
            if m.is_interaction and m.source == whole
        ]

    def sharing_diagrams(self) -> List[SharingDiagram]:
        """All shared parts: aspects that are interaction targets of two
        or more distinct sources."""
        incoming: Dict[Aspect, List[Aspect]] = {}
        for morphism in self.morphisms:
            if morphism.is_interaction:
                incoming.setdefault(morphism.target, []).append(morphism.source)
        return [
            SharingDiagram(shared=shared, sharers=tuple(sources))
            for shared, sources in incoming.items()
            if len(set(sources)) >= 2
        ]

    def check_identity_uniqueness(self) -> List[str]:
        """Report identities whose aspects use one template twice (an
        object may have many aspects but only one per template)."""
        problems: List[str] = []
        for key, group in self.objects().items():
            templates = [a.template.name for a in group]
            duplicates = {t for t in templates if templates.count(t) > 1}
            if duplicates:
                problems.append(
                    f"identity {key!r} has duplicate aspects for templates "
                    f"{sorted(duplicates)}"
                )
        return problems
