"""Aspects: identity-template pairs ``b • t``.

"An object aspect ... is a pair b•t where b is an identity and t is a
template" (Section 3).  The same identity may carry several templates --
that is the heart of inheritance: ``SUN • computer`` and
``SUN • el_device`` are two aspects of one object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datatypes.sorts import IdSort
from repro.datatypes.values import Value, identity as make_identity
from repro.core.templates import Template


@dataclass(frozen=True)
class Aspect:
    """An object aspect ``identity • template`` ("b as t")."""

    identity: Value
    template: Template

    def __post_init__(self) -> None:
        if not isinstance(self.identity.sort, IdSort):
            raise TypeError(
                f"aspect identity must be an identity value, got sort "
                f"{self.identity.sort}"
            )

    def __str__(self) -> str:
        return f"{self.identity.payload}•{self.template.name}"

    def with_template(self, template: Template) -> "Aspect":
        """The aspect of the *same* object under another template."""
        return Aspect(identity=self.identity, template=template)

    def same_object_as(self, other: "Aspect") -> bool:
        """Do the two aspects belong to the same individual object?

        Identity payloads are compared; the identity's class tag is a
        sort-level artifact (``SUN • computer`` and ``SUN • el_device``
        denote one object).
        """
        return self.identity.payload == other.identity.payload


def aspect(key: Any, template: Template) -> Aspect:
    """Build ``key • template`` -- the usual way to create an aspect."""
    return Aspect(identity=make_identity(template.name, key), template=template)
