"""The semantic framework of Section 3: objects as aspects of templates.

The paper's semantic domain is built from

* **templates** -- structure and behaviour patterns without identity
  (:mod:`repro.core.templates`), with behaviour modelled as a labelled
  transition system (:mod:`repro.core.behavior`);
* **identities** -- values of an abstract data type
  (:func:`repro.datatypes.identity`);
* **aspects** -- identity-template pairs ``b • t``
  (:mod:`repro.core.aspects`);
* **morphisms** -- structure/behaviour-preserving maps between templates
  and aspects; an aspect morphism with equal identities is an
  *inheritance* morphism, otherwise an *interaction* morphism
  (:mod:`repro.core.morphisms`);
* **inheritance schemas** -- diagrams of templates and inheritance
  schema morphisms, grown by specialization and abstraction
  (:mod:`repro.core.schema`);
* **object communities** -- collections of aspects and aspect morphisms,
  grown by incorporation (aggregation) and interfacing (synchronization
  by sharing), closed under the inheritance schema
  (:mod:`repro.core.community`).

:mod:`repro.core.bridge` derives templates and an inheritance schema
from a checked TROLL specification, connecting the language front end to
this domain.
"""

from repro.core.behavior import LTS, simulate_containment
from repro.core.templates import ActionItem, ObservationItem, Template
from repro.core.aspects import Aspect, aspect
from repro.core.morphisms import (
    AspectMorphism,
    MorphismError,
    TemplateMorphism,
    compose,
    identity_morphism,
)
from repro.core.schema import InheritanceSchema
from repro.core.community import ObjectCommunity, SharingDiagram
from repro.core.bridge import schema_from_specification, template_from_class
from repro.core.viz import community_to_dot, schema_to_dot, specification_to_dot

__all__ = [
    "ActionItem",
    "Aspect",
    "AspectMorphism",
    "InheritanceSchema",
    "LTS",
    "MorphismError",
    "ObjectCommunity",
    "ObservationItem",
    "SharingDiagram",
    "Template",
    "TemplateMorphism",
    "aspect",
    "community_to_dot",
    "compose",
    "identity_morphism",
    "schema_from_specification",
    "schema_to_dot",
    "simulate_containment",
    "specification_to_dot",
    "template_from_class",
]
