"""Bridge from the language front end to the semantic domain.

A checked TROLL specification induces a fragment of the Section 3
domain: every object class yields a :class:`~repro.core.templates.Template`
(attributes become observations, events become actions), and every
``view of`` declaration yields an inheritance schema morphism from the
view to its base, mapping the inherited items by name.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.datatypes.sorts import ANY
from repro.core.morphisms import TemplateMorphism
from repro.core.schema import InheritanceSchema
from repro.core.templates import ActionItem, ObservationItem, Template
from repro.lang.checker import CheckedSpecification, ClassInfo


def template_from_class(info: ClassInfo) -> Template:
    """The template induced by one object class / single object."""
    actions = {
        name: ActionItem(name=name, param_sorts=decl.param_sorts, kind=decl.kind)
        for name, decl in info.all_events().items()
    }
    observations = {
        name: ObservationItem(
            name=name,
            sort=decl.sort if decl.sort is not None else ANY,
            param_sorts=decl.param_sorts,
        )
        for name, decl in info.attributes.items()
    }
    return Template(name=info.name, actions=actions, observations=observations)


def schema_from_specification(
    checked: CheckedSpecification,
) -> Tuple[InheritanceSchema, Dict[str, Template]]:
    """Derive the inheritance schema of a checked specification.

    Returns the schema together with the name -> template table.  The
    schema morphisms are the ``view of`` relations; their item maps are
    by-name (a view's inherited items *are* the base's items).
    Surjectivity is not enforced here: a TROLL base class may declare
    members the view hides.
    """
    templates: Dict[str, Template] = {
        name: template_from_class(info) for name, info in checked.classes.items()
    }
    schema = InheritanceSchema()
    for template in templates.values():
        schema.add_template(template)
    for name, info in checked.classes.items():
        if info.base is None:
            continue
        morphism = TemplateMorphism.by_name(
            f"{name}_is_{info.base}", templates[name], templates[info.base]
        )
        morphism.validate(require_surjective=False)
        schema.add_morphism(morphism, validate=False)
    return schema, templates
