"""Relations with key constraints and pluggable access paths.

A :class:`Relation` stores rows (``{column: Value}``) under a
:class:`RelationSchema` with a primary key.  The storage engine is
pluggable -- the three access paths of ablation A3:

* :class:`ListStorage` -- linear scan (the naive baseline);
* :class:`HashStorage` -- a dict keyed by the primary key;
* :class:`BTreeStorage` -- the :class:`~repro.relational.btree.BTree`,
  which additionally supports ordered range scans.

Update semantics follow the paper: "the semantics of update operations
are semantically modelled by a sequence consisting of an insert and
delete operation in a set of tuples under the requirement to satisfy the
key constraints".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datatypes.sorts import Sort, TupleSort
from repro.datatypes.values import Value, from_python, tuple_value
from repro.diagnostics import RuntimeSpecError
from repro.observability.hooks import get_observability


class KeyViolation(RuntimeSpecError):
    """A primary-key constraint violation."""


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema: name, typed columns, primary key."""

    name: str
    columns: Tuple[Tuple[str, Sort], ...]
    key: Tuple[str, ...]

    def __post_init__(self) -> None:
        names = [c for c, _ in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"relation {self.name}: duplicate column names")
        unknown = [k for k in self.key if k not in names]
        if unknown:
            raise ValueError(f"relation {self.name}: key columns {unknown} undeclared")
        if not self.key:
            raise ValueError(f"relation {self.name}: empty primary key")

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c for c, _ in self.columns)

    @property
    def tuple_sort(self) -> TupleSort:
        return TupleSort(name="tuple", fields=self.columns)

    def key_of(self, row: Dict[str, Value]) -> tuple:
        return tuple(row[k].payload for k in self.key)


Row = Dict[str, Value]


class Storage:
    """The access-path interface."""

    def insert(self, key: tuple, row: Row) -> None:
        raise NotImplementedError

    def delete(self, key: tuple) -> Optional[Row]:
        raise NotImplementedError

    def lookup(self, key: tuple) -> Optional[Row]:
        raise NotImplementedError

    def scan(self) -> Iterator[Row]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class ListStorage(Storage):
    """Linear scan over an unordered list."""

    def __init__(self) -> None:
        self._rows: List[Tuple[tuple, Row]] = []

    def insert(self, key: tuple, row: Row) -> None:
        self._rows.append((key, row))

    def delete(self, key: tuple) -> Optional[Row]:
        for index, (k, row) in enumerate(self._rows):
            if k == key:
                self._rows.pop(index)
                return row
        return None

    def lookup(self, key: tuple) -> Optional[Row]:
        for k, row in self._rows:
            if k == key:
                return row
        return None

    def scan(self) -> Iterator[Row]:
        for _, row in self._rows:
            yield row

    def __len__(self) -> int:
        return len(self._rows)


class HashStorage(Storage):
    """A hash index on the primary key."""

    def __init__(self) -> None:
        self._rows: Dict[tuple, Row] = {}

    def insert(self, key: tuple, row: Row) -> None:
        self._rows[key] = row

    def delete(self, key: tuple) -> Optional[Row]:
        return self._rows.pop(key, None)

    def lookup(self, key: tuple) -> Optional[Row]:
        return self._rows.get(key)

    def scan(self) -> Iterator[Row]:
        yield from self._rows.values()

    def __len__(self) -> int:
        return len(self._rows)


class BTreeStorage(Storage):
    """The B-tree access path (ordered; supports range scans)."""

    def __init__(self, min_degree: int = 16) -> None:
        from repro.relational.btree import BTree

        self._tree = BTree(min_degree=min_degree)

    def insert(self, key: tuple, row: Row) -> None:
        self._tree.insert(key, row)

    def delete(self, key: tuple) -> Optional[Row]:
        row = self._tree.get(key)
        if row is None:
            return None
        self._tree.delete(key)
        return row

    def lookup(self, key: tuple) -> Optional[Row]:
        return self._tree.get(key)

    def scan(self) -> Iterator[Row]:
        for _, row in self._tree.items():
            yield row

    def range(self, low: tuple, high: tuple) -> Iterator[Row]:
        for _, row in self._tree.range(low, high):
            yield row

    def __len__(self) -> int:
        return len(self._tree)


_STORAGES = {
    "list": ListStorage,
    "hash": HashStorage,
    "btree": BTreeStorage,
}


class Relation:
    """A relation instance over a schema and an access path."""

    def __init__(self, schema: RelationSchema, storage: str = "hash", hooks=None):
        self.schema = schema
        if isinstance(storage, str):
            factory = _STORAGES.get(storage)
            if factory is None:
                raise ValueError(
                    f"unknown storage {storage!r}; choose from {sorted(_STORAGES)}"
                )
            self.storage: Storage = factory()
        else:
            self.storage = storage
        #: telemetry hooks for the refinement layer's query/scan counts
        #: (None -> the process-global default, usually None)
        self.hooks = hooks if hooks is not None else get_observability()

    def _count(self, operation: str) -> None:
        hooks = self.hooks
        if hooks is not None and hooks.enabled:
            hooks.on_relation_query(self.schema.name, operation)

    def __len__(self) -> int:
        return len(self.storage)

    def _coerce_row(self, values: Sequence[object]) -> Row:
        if len(values) != len(self.schema.columns):
            raise RuntimeSpecError(
                f"{self.schema.name}: expected {len(self.schema.columns)} "
                f"column values, got {len(values)}"
            )
        return {
            name: from_python(value)
            for (name, _), value in zip(self.schema.columns, values)
        }

    def insert(self, *values: object) -> Row:
        """Insert a row; raises :class:`KeyViolation` on a duplicate
        key."""
        self._count("insert")
        row = self._coerce_row(values)
        key = self.schema.key_of(row)
        if self.storage.lookup(key) is not None:
            raise KeyViolation(
                f"{self.schema.name}: duplicate key {key!r}"
            )
        self.storage.insert(key, row)
        return row

    def delete(self, *key_values: object) -> Row:
        """Delete by primary key; raises :class:`KeyViolation` when the
        key is absent."""
        self._count("delete")
        key = tuple(from_python(v).payload for v in key_values)
        row = self.storage.delete(key)
        if row is None:
            raise KeyViolation(f"{self.schema.name}: no row with key {key!r}")
        return row

    def update(self, key_values: Sequence[object], new_values: Sequence[object]) -> Row:
        """Update by primary key, modelled as delete-then-insert (the
        paper's update semantics)."""
        old = self.delete(*key_values)
        try:
            return self.insert(*new_values)
        except KeyViolation:
            # restore the deleted row to keep the operation atomic
            self.storage.insert(self.schema.key_of(old), old)
            raise

    def lookup(self, *key_values: object) -> Optional[Row]:
        self._count("lookup")
        key = tuple(from_python(v).payload for v in key_values)
        return self.storage.lookup(key)

    def scan(self) -> List[Row]:
        hooks = self.hooks
        if hooks is not None and hooks.enabled:
            hooks.on_relation_scan(self.schema.name)
        return list(self.storage.scan())

    def as_value(self) -> Value:
        """The relation's contents as a TROLL set-of-tuples value (the
        shape of ``emp_rel``'s ``Emps`` attribute)."""
        from repro.datatypes.values import set_value

        hooks = self.hooks
        if hooks is not None and hooks.enabled:
            hooks.on_relation_scan(self.schema.name)
        return set_value(
            (tuple_value(row) for row in self.storage.scan()),
            self.schema.tuple_sort,
        )
