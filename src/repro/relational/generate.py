"""Automatic derivation of relation-object specifications.

"The interfaces (i.e., the object signature) of such implementation
objects can be derived automatically from a given relational schema.
... In general, there are a number of update events generated from a
given relational schema."  (Section 5.2)

:func:`relation_object_spec` emits, for a :class:`RelationSchema`, a
TROLL single-object specification of the ``emp_rel`` shape:

* a set-of-tuples attribute holding the relation state;
* ``Create<R>`` / ``Close<R>`` birth and death events (closing only an
  empty relation);
* ``Insert<R>`` over all columns, guarded by the key constraint;
* ``Delete<R>`` over the key columns, requiring presence;
* ``Update<R>`` over all columns, implemented by transaction calling as
  delete-then-insert.

The emitted text round-trips through the parser and checker, so the
generated object animates exactly like the hand-written ``emp_rel``.
"""

from __future__ import annotations

from typing import List

from repro.datatypes.sorts import Sort, SetSort, ListSort, MapSort, TupleSort
from repro.relational.engine import RelationSchema


def _sort_text(sort: Sort) -> str:
    if isinstance(sort, SetSort):
        return f"set({_sort_text(sort.element)})"
    if isinstance(sort, ListSort):
        return f"list({_sort_text(sort.element)})"
    if isinstance(sort, MapSort):
        return f"map({_sort_text(sort.key)}, {_sort_text(sort.value)})"
    if isinstance(sort, TupleSort):
        inner = ", ".join(f"{n}: {_sort_text(s)}" for n, s in sort.fields)
        return f"tuple({inner})"
    return sort.name


def relation_object_spec(schema: RelationSchema, object_name: str = "") -> str:
    """Emit the TROLL single-object specification for ``schema``."""
    name = object_name or f"{schema.name}_rel"
    rel = schema.name.capitalize()
    attr = f"{rel}s"
    columns = list(schema.columns)
    key = list(schema.key)
    non_key = [c for c, _ in columns if c not in key]
    sort_of = dict(columns)

    all_sorts = ", ".join(_sort_text(s) for _, s in columns)
    tuple_sort = ", ".join(f"{c}: {_sort_text(s)}" for c, s in columns)

    def vars_decl(names: List[str]) -> str:
        return "; ".join(f"{_var(c)}: {_sort_text(sort_of[c])}" for c in names) + ";"

    def _var(column: str) -> str:
        return f"v_{column}"

    insert_args = ", ".join(_var(c) for c, _ in columns)
    insert_fields = ", ".join(f"{c}: {_var(c)}" for c, _ in columns)
    delete_args = ", ".join(_var(c) for c in key)
    key_match = " and ".join(f"{c} = {_var(c)}" for c in key)
    insert_sorts = ", ".join(_sort_text(s) for _, s in columns)
    delete_sorts = ", ".join(_sort_text(sort_of[c]) for c in key)

    # The key-presence test existentially quantifies the non-key columns.
    if non_key:
        quantifiers = ", ".join(f"q_{c}: {_sort_text(sort_of[c])}" for c in non_key)
        probe_fields = ", ".join(
            f"{c}: {_var(c)}" if c in key else f"{c}: q_{c}" for c, _ in columns
        )
        present = f"exists({quantifiers}) in({attr}, tuple({probe_fields}))"
    else:
        probe_fields = ", ".join(f"{c}: {_var(c)}" for c, _ in columns)
        present = f"in({attr}, tuple({probe_fields}))"

    lines = [
        f"object {name}",
        "  template",
        f"    data types {all_sorts};",
        "    attributes",
        f"      {attr} : set(tuple({tuple_sort}));",
        "    events",
        f"      birth Create{rel};",
        f"      Insert{rel}({insert_sorts});",
        f"      Delete{rel}({delete_sorts});",
        f"      Update{rel}({insert_sorts});",
        f"      death Close{rel};",
        "    valuation",
        f"      variables {vars_decl([c for c, _ in columns])}",
        f"      [Create{rel}] {attr} = {{}};",
        f"      [Insert{rel}({insert_args})] {attr} = insert({attr}, tuple({insert_fields}));",
        f"      [Delete{rel}({delete_args})] {attr} = select[not({key_match})]({attr});",
        "    permissions",
        f"      variables {vars_decl([c for c, _ in columns])}",
        f"      {{ not({present}) }} Insert{rel}({insert_args});",
        f"      {{ {present} }} Delete{rel}({delete_args});",
        f"      {{ {present} }} Update{rel}({insert_args});",
        f"      {{ {attr} = {{}} }} Close{rel};",
        "    interaction",
        f"      variables {vars_decl([c for c, _ in columns])}",
        f"      Update{rel}({insert_args}) >> (Delete{rel}({delete_args}); Insert{rel}({insert_args}));",
        f"end object {name};",
    ]
    return "\n".join(lines)
