"""An in-memory B-tree.

A classic order-``t`` B-tree (minimum degree ``t``): every node except
the root holds between ``t - 1`` and ``2t - 1`` keys; all leaves are at
the same depth.  Keys are arbitrary comparable Python objects; each key
carries one value (the relation row).

This is the "B-tree access method" Section 5.2 mentions as the next
implementation layer below the relation object; benchmark A3 compares it
against the linear-scan and hash access paths.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.children: List["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-tree map with ordered iteration and range scans."""

    def __init__(self, min_degree: int = 16):
        if min_degree < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while True:
            index = _bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.is_leaf:
                return default
            node = node.children[index]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> bool:
        """Insert or update; returns True when the key was new."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        fresh = self._insert_nonfull(self._root, key, value)
        if fresh:
            self._size += 1
        return fresh

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> bool:
        index = _bisect(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value
            return False
        if node.is_leaf:
            node.keys.insert(index, key)
            node.values.insert(index, value)
            return True
        child = node.children[index]
        if len(child.keys) == 2 * self._t - 1:
            self._split_child(node, index)
            if key == node.keys[index]:
                node.values[index] = value
                return False
            if key > node.keys[index]:
                index += 1
        return self._insert_nonfull(node.children[index], key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(index + 1, sibling)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Delete ``key``; returns True when it was present."""
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, key: Any) -> bool:
        t = self._t
        index = _bisect(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.is_leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return True
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                pred_key, pred_value = self._max_entry(left)
                node.keys[index], node.values[index] = pred_key, pred_value
                return self._delete(left, pred_key)
            if len(right.keys) >= t:
                succ_key, succ_value = self._min_entry(right)
                node.keys[index], node.values[index] = succ_key, succ_value
                return self._delete(right, succ_key)
            self._merge_children(node, index)
            return self._delete(node.children[index], key)
        if node.is_leaf:
            return False
        child_index = index
        child = node.children[child_index]
        if len(child.keys) == t - 1:
            child_index = self._grow_child(node, child_index)
            child = node.children[child_index]
        return self._delete(child, key)

    def _grow_child(self, node: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys, borrowing or merging;
        returns the (possibly shifted) child index holding the search
        path."""
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            child.values.insert(0, node.values[index - 1])
            node.keys[index - 1] = left.keys.pop()
            node.values[index - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.children) - 1 and len(node.children[index + 1].keys) >= t:
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            child.values.append(node.values[index])
            node.keys[index] = right.keys.pop(0)
            node.values[index] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
            return index
        if index > 0:
            self._merge_children(node, index - 1)
            return index - 1
        self._merge_children(node, index)
        return index

    def _merge_children(self, node: _Node, index: int) -> None:
        left = node.children[index]
        right = node.children.pop(index + 1)
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)

    def _max_entry(self, node: _Node) -> Tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> Tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for index, key in enumerate(node.keys):
            yield from self._walk(node.children[index])
            yield key, node.values[index]
        yield from self._walk(node.children[-1])

    def range(self, low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        """Entries with ``low <= key <= high``, in key order.

        Seeks: descends straight to the first key ``>= low`` by
        per-node bisection (pruning every subtree left of the bound)
        and stops at the first key ``> high`` -- O(log n + k) for k
        results, instead of scanning from the minimum key."""
        if low > high:
            return
        yield from self._range(self._root, low, high)

    def _range(self, node: _Node, low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        index = _bisect(node.keys, low)
        if node.is_leaf:
            for i in range(index, len(node.keys)):
                key = node.keys[i]
                if key > high:
                    return
                yield key, node.values[i]
            return
        # child[index] is the only subtree that can straddle ``low``;
        # everything right of it is >= low already, so it streams
        # through the cheaper high-bounded walk.
        yield from self._range(node.children[index], low, high)
        for i in range(index, len(node.keys)):
            key = node.keys[i]
            if key > high:
                return
            yield key, node.values[i]
            yield from self._walk_until(node.children[i + 1], high)

    def _walk_until(self, node: _Node, high: Any) -> Iterator[Tuple[Any, Any]]:
        """In-order walk that stops at the first key above ``high``."""
        if node.is_leaf:
            for key, value in zip(node.keys, node.values):
                if key > high:
                    return
                yield key, value
            return
        for index, key in enumerate(node.keys):
            yield from self._walk_until(node.children[index], high)
            if key > high:
                return
            yield key, node.values[index]
        yield from self._walk_until(node.children[-1], high)

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Raise AssertionError if the structural invariants are broken
        (used by the property-based tests)."""
        t = self._t
        leaf_depths = set()

        def visit(node: _Node, depth: int, lo: Any, hi: Any, is_root: bool) -> None:
            assert node.keys == sorted(node.keys), "unsorted node keys"
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= t - 1, "underfull node"
            assert len(node.keys) <= 2 * t - 1, "overfull node"
            for key in node.keys:
                if lo is not None:
                    assert key > lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo] + list(node.keys) + [hi]
            for index, child in enumerate(node.children):
                visit(child, depth + 1, bounds[index], bounds[index + 1], False)

        visit(self._root, 1, None, None, True)
        assert len(leaf_depths) <= 1, "leaves at differing depths"


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _bisect(keys: List[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
