"""The relational implementation platform (Section 5.2's substrate).

The paper implements the EMPLOYEE class over an object ``emp_rel``
"describing a database relation of a relational database", and remarks
that "this relation object itself may be implemented for example by
another object using a B-tree or a hash table access method", and that
relation-object interfaces "can be derived automatically from a given
relational schema".

This package supplies all three layers:

* :mod:`repro.relational.engine` -- relations with typed columns, key
  constraints and pluggable access paths: a linear-scan store, a hash
  index, and a real in-memory B-tree (:mod:`repro.relational.btree`);
* :mod:`repro.relational.generate` -- the automatic derivation of a
  TROLL relation-object specification (the ``emp_rel`` shape: Create /
  Insert / Delete / Update / Close, with key-constraint permissions)
  from a relational schema.
"""

from repro.relational.btree import BTree
from repro.relational.engine import (
    BTreeStorage,
    HashStorage,
    KeyViolation,
    ListStorage,
    Relation,
    RelationSchema,
)
from repro.relational.generate import relation_object_spec

__all__ = [
    "BTree",
    "BTreeStorage",
    "HashStorage",
    "KeyViolation",
    "ListStorage",
    "Relation",
    "RelationSchema",
    "relation_object_spec",
]
