"""Whole-transaction compilation: fused per-event transaction closures.

PR 5's closure compiler lowers individual rule *bodies*; every occurrence
still runs the generic dry-transaction pipeline (permission probe,
valuation loop, constraint sweep, journal bookkeeping) in interpreted
Python.  This module compiles the *whole transaction*: for each
``(class, event)`` pair it builds, once, a :class:`TxnPlan` that

* inlines the permission fast-path (pre-classified event-argument
  matchers, a shared no-bindings environment, the monitor lookup without
  the per-rule profiling scaffolding of the generic path),
* executes valuation writes directly against instance storage (no
  ``_Transaction`` allocation, no ``full_snapshot`` dict copies, no
  ``_storage_owner`` set rebuilding per write -- rollback uses a targeted
  undo log instead), and
* sweeps only the statically-relevant constraint subset: constraints
  whose read-set (own plain attributes, derived attributes expanded
  transitively) intersects the event's write-set (the attributes its
  valuation rules can assign).  Constraints that read beyond the
  instance's own state (quantifiers, query operations, foreign
  attribute access, populations) are conservatively always swept.

The generic pipeline stays the behavioural oracle.  Any construct the
compiler cannot reproduce bit-for-bit -- event calling fan-out, role
birth/death, hidden events, view classes, birth/death events -- is
*declined* statically, and per-call conditions the plan cannot handle
(live role aspects, re-entrant probes, a partially faulted-in instance
under a paging store) fall back dynamically; both run the existing
``_run_unit`` pipeline with identical exception types, bit-identical
journals and traces, and the probe-cache epoch contract of
docs/PERFORMANCE.md preserved unchanged (fused commits perform exactly
the same epoch arithmetic as the generic commit path).

Decline taxonomy (the strings cached in ``CompiledClass.txn_cache``):

========================  ==============================================
``unknown_event``         no such event (the generic path raises)
``lifecycle_event``       birth/death events (creation, initial values,
                          population bumps, obligation permissions)
``hidden_event``          occurs only through event calling
``bound_event``           routed to the declaring aspect of a role chain
``view_class``            role/view classes (base-chain state, echoes)
``event_calling``         local or global interaction rules fan out
``role_lifecycle``        the event births or kills role aspects
========================  ==============================================

Mirroring ``repro.datatypes.compile``, the module keeps always-on plain
int accounting in :data:`STATS`; observability's ``txn_compile.*``
counters are live views over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datatypes.operations import BUILTIN_OPERATIONS
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Lit,
    ListCons,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.datatypes.values import Value
from repro.diagnostics import (
    CheckError,
    ConstraintViolation,
    EvaluationError,
    LifecycleError,
    OccurrenceRef,
    PermissionDenied,
    RuntimeSpecError,
)
from repro.observability.profile import (
    PHASE_CALLED_EVENTS,
    PHASE_CONSTRAINT_SWEEP,
    PHASE_JOURNAL_COMMIT,
    PHASE_PERMISSION,
    PHASE_ROLE_UPDATES,
    PHASE_VALUATION,
)
from repro.temporal.evaluation import TraceStep, evaluate_formula_now


class TxnCompileStats:
    """Always-on plain-int accounting of the transaction-compiler seam.
    The observability counters ``txn_compile.{compiled,declines,
    fallbacks,cache_hits}`` are live views over this object -- no
    per-occurrence callback."""

    __slots__ = ("compiled", "declines", "fallbacks", "cache_hits")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: (class, event) pairs lowered to fused transaction closures
        self.compiled = 0
        #: (class, event) pairs the compiler statically declined
        self.declines = 0
        #: occurrences run through the generic pipeline while
        #: txn-compile was on (declined pair or per-call ineligibility)
        self.fallbacks = 0
        #: occurrences executed by a previously compiled fused closure
        self.cache_hits = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "compiled": self.compiled,
            "declines": self.declines,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
        }


STATS = TxnCompileStats()

#: removed-value sentinel for the write undo log
_MISSING = object()

#: matcher sentinel: the rule's arity never matches this event
_NEVER = object()

_Occurrence = None


def _occurrence_class():
    # resolved lazily: objectbase imports this module at load time
    global _Occurrence
    if _Occurrence is None:
        from repro.runtime.objectbase import Occurrence

        _Occurrence = Occurrence
    return _Occurrence


class _ShimTxn:
    """The minimal transaction facade :meth:`Journal.record_commit`
    reads: the committed step list and the causal parent of each step
    (always ``None`` -- fused plans never record called occurrences)."""

    __slots__ = ("steps", "parents")

    def __init__(self, steps):
        self.steps = steps
        self.parents = (None,) * len(steps)


# ----------------------------------------------------------------------
# Static read-set analysis
# ----------------------------------------------------------------------


def constraint_read_set(term: Term, compiled) -> Optional[frozenset]:
    """The set of own plain-attribute names a constraint term can read,
    or ``None`` when the term can observe state beyond this instance's
    own attributes (quantifiers, query operations, foreign attribute
    access, populations, aliases) and must always be swept.  Derived
    attributes are expanded transitively through their derivation
    rules."""
    reads: set = set()
    if _collect_reads(term, compiled, frozenset(), reads, set()):
        return frozenset(reads)
    return None


def _collect_reads(term, compiled, bound, reads, expanding) -> bool:
    """Accumulate local attribute reads; False means non-local."""
    if isinstance(term, (Lit, SelfExpr)):
        return True
    if isinstance(term, Var):
        if term.name in bound:
            return True
        return _note_attribute(term.name, compiled, reads, expanding)
    if isinstance(term, Apply):
        if term.op not in BUILTIN_OPERATIONS:
            # parametrized own-attribute read in application form
            if not _note_attribute(term.op, compiled, reads, expanding):
                return False
        for arg in term.args:
            if not _collect_reads(arg, compiled, bound, reads, expanding):
                return False
        return True
    if isinstance(term, AttributeAccess):
        # only SELF.attr is provably local; any other object term may
        # resolve to a foreign instance's state
        if not isinstance(term.obj, SelfExpr):
            return False
        if not _note_attribute(term.attribute, compiled, reads, expanding):
            return False
        for arg in term.args:
            if not _collect_reads(arg, compiled, bound, reads, expanding):
                return False
        return True
    if isinstance(term, (SetCons, ListCons)):
        return all(
            _collect_reads(t, compiled, bound, reads, expanding)
            for t in term.items
        )
    if isinstance(term, TupleCons):
        return all(
            _collect_reads(t, compiled, bound, reads, expanding)
            for _, t in term.items
        )
    # Forall/Exists (scope harvesting), QueryOp (collection queries) and
    # anything unrecognized: conservatively non-local.
    return False


def _note_attribute(name, compiled, reads, expanding) -> bool:
    info = compiled.info
    if name not in info.attributes and name not in info.components:
        # unbound name, inheriting alias or population read
        return False
    reads.add(name)
    rule = compiled.derivation_by_attribute.get(name)
    if rule is not None and name not in expanding:
        expanding.add(name)
        try:
            if not _collect_reads(
                rule.expr, compiled, frozenset(rule.params), reads, expanding
            ):
                return False
        finally:
            expanding.discard(name)
    return True


# ----------------------------------------------------------------------
# Event-argument matcher compilation
# ----------------------------------------------------------------------


def _compile_matcher(patterns, param_count, var_names, compiled):
    """Classify a rule's event-argument patterns.

    Returns ``_NEVER`` (arity can never match), a fast binder closure
    (every pattern is a binding ``Var``), or ``None`` (at least one
    pattern needs evaluation -- match dynamically through the generic
    ``_match_event_args``)."""
    if len(patterns) != param_count:
        return _NEVER
    info = compiled.info
    names: List[str] = []
    for pattern in patterns:
        if isinstance(pattern, Var) and (
            pattern.name in var_names
            or (
                pattern.name not in info.attributes
                and pattern.name not in info.components
            )
        ):
            names.append(pattern.name)
        else:
            return None
    if not names:
        return lambda args: {}
    binder = tuple(names)
    if len(set(binder)) == len(binder):
        def match(args, _names=binder):
            return dict(zip(_names, args))

        return match

    def match_dup(args, _names=binder):
        bindings: Dict[str, Value] = {}
        for name, actual in zip(_names, args):
            bound = bindings.get(name)
            if bound is None:
                bindings[name] = actual
            elif bound != actual:
                return None
        return bindings

    return match_dup


# ----------------------------------------------------------------------
# The transaction plan
# ----------------------------------------------------------------------


class TxnPlan:
    """One fused transaction closure for a ``(class, event)`` pair."""

    __slots__ = (
        "class_name",
        "event",
        "decl_name",
        "param_count",
        "perm_rules",
        "val_rules",
        "automaton",
        "protocol_constrained",
        "relevant_constraints",
        "write_set",
        "constraint_total",
        "is_class_kind",
    )

    def __init__(
        self,
        class_name,
        event,
        decl_name,
        param_count,
        perm_rules,
        val_rules,
        automaton,
        protocol_constrained,
        relevant_constraints,
        write_set,
        constraint_total,
        is_class_kind,
    ):
        self.class_name = class_name
        self.event = event
        self.decl_name = decl_name
        self.param_count = param_count
        #: ((original index, rule, matcher), ...)
        self.perm_rules = perm_rules
        #: ((rule, matcher), ...)
        self.val_rules = val_rules
        self.automaton = automaton
        self.protocol_constrained = protocol_constrained
        #: ((original index, constraint), ...) -- the statically-relevant
        #: subset of the class's static constraints
        self.relevant_constraints = relevant_constraints
        self.write_set = write_set
        self.constraint_total = constraint_total
        self.is_class_kind = is_class_kind

    @property
    def relevant_indexes(self) -> Tuple[int, ...]:
        return tuple(index for index, _ in self.relevant_constraints)

    # -- per-call eligibility ------------------------------------------

    def eligible(self, system, instance) -> bool:
        """Per-call conditions the fused closure cannot reproduce:
        live role aspects (role permission checks, echo steps, the
        role-aware constraint sweep), a memoizing probe in flight, a
        nested atomic unit, a partially faulted-in instance (rollback
        images would have to carry the lazy overlay), or a foreign
        instance."""
        return (
            not instance.roles
            and instance._lazy_state is None
            and system._probe_deps is None
            and system._in_unit == 0
            and instance.system is system
        )

    # -- phases (shared by quiet/observed/batch runners) ---------------

    def _checks(self, system, instance, args, obs, prof):
        """Arity, life-cycle, permission and protocol checks; returns
        the successor protocol states (or None).  Mirrors the generic
        ``_process_body`` + ``_phase_checks`` bit for bit."""
        if len(args) != self.param_count:
            raise CheckError(
                f"{self.class_name}.{self.event} expects "
                f"{self.param_count} argument(s), got {len(args)}"
            )
        if not instance.born:
            raise LifecycleError(
                f"{self.class_name}({instance.key!r}): event "
                f"{self.decl_name!r} before birth"
            )
        if instance.dead:
            raise LifecycleError(
                f"{self.class_name}({instance.key!r}): event "
                f"{self.decl_name!r} after death"
            )
        shared_env = None
        incremental = system.permission_mode == "incremental"
        for index, rule, matcher in self.perm_rules:
            if matcher is None:
                bindings = system._match_event_args(
                    rule.event.args, args, instance, rule.variables
                )
            else:
                bindings = matcher(args)
            if bindings is None:
                continue
            if bindings:
                env = instance.environment(bindings)
            else:
                env = shared_env
                if env is None:
                    env = shared_env = instance.environment()
            if prof is not None:
                prof.begin(
                    prof.rule_name(
                        "permission", self.class_name, self.event, index
                    )
                )
            if incremental:
                monitor = instance.monitors.get(id(rule))
                if monitor is None:
                    monitor = system._create_monitor(instance, rule)
                admitted = monitor.check(env)
            else:
                admitted = evaluate_formula_now(
                    rule.formula,
                    instance.trace,
                    env,
                    term_eval=system._class_term_eval(instance.compiled),
                )
            if prof is not None:
                prof.end()
            if not admitted:
                if obs is not None:
                    obs.on_permission_denied(
                        self.class_name, self.event, str(rule.formula)
                    )
                raise PermissionDenied(
                    f"{self.class_name}({instance.key!r}).{self.event}: "
                    f"permission {{ {rule.formula} }} does not hold",
                    rule.position,
                )
        if self.protocol_constrained:
            states = self.automaton.advance(
                instance.protocol_states, self.event
            )
            if not states:
                if obs is not None:
                    obs.on_permission_denied(
                        self.class_name, self.event, "behaviour_pattern"
                    )
                raise PermissionDenied(
                    f"{self.class_name}({instance.key!r}).{self.event}: "
                    "occurrence violates the declared behaviour pattern"
                )
            return states
        return None

    def _plan(self, system, instance, args, prof):
        """Evaluate every applicable valuation rule on the pre-state;
        mirrors ``_plan_valuation``."""
        assignments: List[Tuple[str, Tuple[Value, ...], Value]] = []
        shared_env = None
        owner = instance.compiled
        for rule, matcher in self.val_rules:
            if matcher is None:
                bindings = system._match_event_args(
                    rule.event.args, args, instance, rule.variables
                )
            else:
                bindings = matcher(args)
            if bindings is None:
                continue
            if bindings:
                env = instance.environment(bindings)
            else:
                env = shared_env
                if env is None:
                    env = shared_env = instance.environment()
            if prof is not None:
                prof.begin(
                    prof.node_name(
                        "valuation", self.class_name, rule.attribute
                    )
                )
            if rule.guard is not None:
                try:
                    if not bool(system.eval_term(rule.guard, env, owner)):
                        if prof is not None:
                            prof.end()
                        continue
                except EvaluationError:
                    if prof is not None:
                        prof.end()
                    continue
            attr_args = tuple(
                system.eval_term(a, env, owner) for a in rule.attribute_args
            )
            value = system.eval_term(rule.expr, env, owner)
            if prof is not None:
                prof.end()
            assignments.append((rule.attribute, attr_args, value))
        return assignments

    def _apply(self, system, instance, assignments, new_states, obs, undo):
        """Write the valuation results directly against instance
        storage, appending (attribute, args-or-None, old value) entries
        to ``undo``.  Epoch arithmetic matches ``set_attribute``: one
        bump per write."""
        if not system.store.direct:
            # every mutated instance must be hot at commit so the paging
            # store writes the mutation back on eviction
            system.store.readmit(instance)
        if new_states is not None:
            instance.protocol_states = new_states
        count_writes = obs is not None and obs.count_attr_accesses
        state = instance.state
        param_state = instance.param_state
        for attribute, attr_args, value in assignments:
            if count_writes:
                obs.on_attribute_write(self.class_name, attribute)
            instance.epoch += 1
            if attr_args:
                table = param_state.setdefault(attribute, {})
                undo.append(
                    (attribute, attr_args, table.get(attr_args, _MISSING))
                )
                table[attr_args] = value
            else:
                undo.append((attribute, None, state.get(attribute, _MISSING)))
                state[attribute] = value

    @staticmethod
    def _undo(touched, undo):
        """Roll a failed fused transaction back: written values restored
        in reverse, then each touched instance's epoch and protocol
        configuration -- exactly the image ``full_snapshot``/``restore``
        would have produced."""
        for instance, attribute, attr_args, old in reversed(undo):
            if attr_args is not None:
                table = instance.param_state.get(attribute)
                if table is not None:
                    if old is _MISSING:
                        table.pop(attr_args, None)
                        if not table:
                            # the write created the table; a generic
                            # rollback restores a param_state without it
                            del instance.param_state[attribute]
                    else:
                        table[attr_args] = old
            elif old is _MISSING:
                instance.state.pop(attribute, None)
            else:
                instance.state[attribute] = old
        for instance, epoch, protocol_states in touched:
            instance.epoch = epoch
            instance.protocol_states = protocol_states

    def _sweep(self, system, instance, obs, prof):
        """Check the statically-relevant constraint subset; mirrors
        ``_check_instance_constraints`` (original indexes, identical
        messages and the event-less OccurrenceRef)."""
        if not system.check_constraints or not self.relevant_constraints:
            return
        env = instance.environment()
        occurrence = OccurrenceRef(self.class_name, None, instance.key)
        owner = instance.compiled
        for index, constraint in self.relevant_constraints:
            if prof is not None:
                prof.begin(
                    prof.indexed_name("constraint", self.class_name, index)
                )
            try:
                holds = bool(system.eval_term(constraint.formula, env, owner))
            except EvaluationError as exc:
                if obs is not None:
                    obs.on_constraint_violation(self.class_name)
                raise ConstraintViolation(
                    f"{self.class_name}({instance.key!r}): constraint "
                    f"{constraint.formula} cannot be evaluated: {exc.message}",
                    constraint.position,
                    occurrence=occurrence,
                )
            if prof is not None:
                prof.end()
            if not holds:
                if obs is not None:
                    obs.on_constraint_violation(self.class_name)
                raise ConstraintViolation(
                    f"{self.class_name}({instance.key!r}): constraint "
                    f"{constraint.formula} violated",
                    constraint.position,
                    occurrence=occurrence,
                )

    def _commit(self, system, steps, recorder, triggers):
        """Journal record, trace steps, monitor updates and the
        class-object side effect, in the generic commit order."""
        if recorder is not None:
            recorder.record_commit(_ShimTxn(steps), triggers)
        incremental = system.permission_mode == "incremental"
        for instance, step, _kind in steps:
            instance.record_step(step)
            if incremental:
                system._update_monitors(instance, step)
            if self.is_class_kind:
                system.class_object(self.class_name)

    def _finish(self, system, steps):
        occurrence_cls = _occurrence_class()
        committed = [
            occurrence_cls(instance, step.event, step.args)
            for instance, step, _kind in steps
        ]
        system.journal.extend(committed)
        system._notify_commit(committed)

    # -- runners --------------------------------------------------------

    def run_quiet(self, system, instance, args) -> None:
        """The fused hot path: no observability, no profiler (the
        dispatcher routes those to :meth:`run_observed` or the generic
        pipeline)."""
        recorder = system.recorder
        triggers = (
            recorder.snapshot_triggers(((instance, self.event, args),))
            if recorder is not None
            else None
        )
        system._in_unit += 1
        try:
            step = None
            touched: list = []
            undo: list = []
            try:
                try:
                    new_states = self._checks(
                        system, instance, args, None, None
                    )
                    assignments = self._plan(system, instance, args, None)
                    touched.append(
                        (instance, instance.epoch, instance.protocol_states)
                    )
                    item_undo: list = []
                    self._apply(
                        system, instance, assignments, new_states,
                        system.obs, item_undo,
                    )
                    undo.extend(
                        (instance, attribute, attr_args, old)
                        for attribute, attr_args, old in item_undo
                    )
                    step = TraceStep(
                        event=self.event,
                        args=args,
                        state=tuple(instance.state.items()),
                    )
                except RuntimeSpecError as exc:
                    if exc.occurrence is None:
                        exc.occurrence = OccurrenceRef(
                            self.class_name, self.event, instance.key
                        )
                    raise
                self._sweep(system, instance, None, None)
            except Exception as exc:
                self._undo(touched, undo)
                if recorder is not None:
                    recorder.record_rollback(triggers, exc)
                raise
            steps = ((instance, step, "normal"),)
            self._commit(system, steps, recorder, triggers)
        finally:
            system._in_unit -= 1
            system._balance_store()
        self._finish(system, steps)

    def run_observed(self, system, obs, instance, args) -> None:
        """The instrumented twin of :meth:`run_quiet`: reproduces the
        generic observed pipeline's spans, phases, hooks and counters,
        with one deliberate difference -- the profiler root is
        ``txn:CLS.event`` instead of ``unit:CLS.event``, so ``repro
        profile`` attributes fused vs fallback occurrences."""
        recorder = system.recorder
        triggers = (
            recorder.snapshot_triggers(((instance, self.event, args),))
            if recorder is not None
            else None
        )
        prof = system.prof
        if prof is not None:
            prof.begin_root(
                prof.node_name("txn", self.class_name, self.event)
            )
        if obs.tracing:
            span_context = obs.tracer.span(
                "sync_set",
                trigger=f"{self.class_name}({instance.key!r}).{self.event}",
            )
        else:
            from repro.observability.hooks import _NULL_SPAN_CONTEXT

            span_context = _NULL_SPAN_CONTEXT
        system._in_unit += 1
        try:
            with span_context as root:
                step = None
                touched: list = []
                undo: list = []
                try:
                    try:
                        if obs.tracing:
                            with obs.tracer.span(
                                "occurrence",
                                **{
                                    "class": self.class_name,
                                    "event": self.event,
                                    "identity": repr(instance.key),
                                },
                            ):
                                step = self._observed_body(
                                    system, obs, prof, instance, args,
                                    touched, undo,
                                )
                        else:
                            step = self._observed_body(
                                system, obs, prof, instance, args,
                                touched, undo,
                            )
                    except RuntimeSpecError as exc:
                        if exc.occurrence is None:
                            exc.occurrence = OccurrenceRef(
                                self.class_name, self.event, instance.key
                            )
                        raise
                    if prof is not None:
                        prof.begin(PHASE_CONSTRAINT_SWEEP)
                    with obs.phase("constraint_check"):
                        self._sweep(system, instance, obs, prof)
                    if prof is not None:
                        prof.end()
                except Exception as exc:
                    self._undo(touched, undo)
                    reason = type(exc).__name__
                    failed = getattr(exc, "occurrence", None)
                    root.set("outcome", "rolled_back")
                    root.set("rollback_reason", reason)
                    if failed is not None:
                        root.set("failed_occurrence", str(failed))
                    obs.on_rollback(
                        1 if step is not None else 0,
                        reason,
                        str(failed) if failed else "",
                    )
                    if recorder is not None:
                        recorder.record_rollback(triggers, exc)
                    raise
                steps = ((instance, step, "normal"),)
                if prof is not None:
                    prof.begin(PHASE_JOURNAL_COMMIT)
                self._commit(system, steps, recorder, triggers)
                if prof is not None:
                    prof.end()
                root.set("outcome", "committed")
                root.set("sync_set_size", 1)
                obs.on_commit(1)
                self._finish(system, steps)
        finally:
            system._in_unit -= 1
            system._balance_store()
            if prof is not None:
                prof.end_root()

    def _observed_body(
        self, system, obs, prof, instance, args, touched, undo
    ) -> TraceStep:
        """Checks + valuation + apply under the generic path's phase
        spans and profiler nodes (role_updates and called_events are
        statically empty but still timed, matching the oracle)."""
        if prof is not None:
            prof.begin(
                prof.node_name("occurrence", self.class_name, self.event)
            )
            prof.begin(PHASE_PERMISSION)
        with obs.phase("permission_check"):
            new_states = self._checks(system, instance, args, obs, prof)
        if prof is not None:
            prof.end()
            prof.begin(PHASE_VALUATION)
        with obs.phase("valuation"):
            assignments = self._plan(system, instance, args, prof)
            touched.append(
                (instance, instance.epoch, instance.protocol_states)
            )
            item_undo: list = []
            self._apply(
                system, instance, assignments, new_states, obs, item_undo
            )
            undo.extend(
                (instance, attribute, attr_args, old)
                for attribute, attr_args, old in item_undo
            )
            step = TraceStep(
                event=self.event,
                args=args,
                state=tuple(instance.state.items()),
            )
        if prof is not None:
            prof.end()
            prof.begin(PHASE_ROLE_UPDATES)
        with obs.phase("role_updates"):
            pass
        if prof is not None:
            prof.end()
            prof.begin(PHASE_CALLED_EVENTS)
        with obs.phase("called_events"):
            pass
        if prof is not None:
            prof.end()
            prof.end()  # the occurrence node
        return step

    def run_batch_quiet(self, system, items: Sequence[tuple]) -> None:
        """One atomic unit over a homogeneous event batch, reusing this
        plan across every item (the ``occur_sequence`` fast path).
        Items are processed strictly in order -- later items see earlier
        items' writes, duplicates are deduplicated on the generic
        ``(class, key, event, args)`` key -- then one constraint sweep
        over the touched instances in first-touch order, then one
        commit."""
        recorder = system.recorder
        triggers = (
            recorder.snapshot_triggers(items) if recorder is not None else None
        )
        obs = system.obs
        system._in_unit += 1
        try:
            touched: list = []
            touched_ids: set = set()
            undo: list = []
            steps: list = []
            processed: set = set()
            try:
                for instance, event, args in items:
                    dedup = (self.class_name, instance.key, event, args)
                    if dedup in processed:
                        continue
                    processed.add(dedup)
                    try:
                        new_states = self._checks(
                            system, instance, args, None, None
                        )
                        assignments = self._plan(
                            system, instance, args, None
                        )
                        if id(instance) not in touched_ids:
                            touched_ids.add(id(instance))
                            touched.append(
                                (
                                    instance,
                                    instance.epoch,
                                    instance.protocol_states,
                                )
                            )
                        item_undo: list = []
                        self._apply(
                            system, instance, assignments, new_states,
                            obs, item_undo,
                        )
                        undo.extend(
                            (instance, attribute, attr_args, old)
                            for attribute, attr_args, old in item_undo
                        )
                        steps.append(
                            (
                                instance,
                                TraceStep(
                                    event=event,
                                    args=args,
                                    state=tuple(instance.state.items()),
                                ),
                                "normal",
                            )
                        )
                    except RuntimeSpecError as exc:
                        if exc.occurrence is None:
                            exc.occurrence = OccurrenceRef(
                                self.class_name, event, instance.key
                            )
                        raise
                for instance, _epoch, _protocol in touched:
                    self._sweep(system, instance, None, None)
            except Exception as exc:
                self._undo(touched, undo)
                if recorder is not None:
                    recorder.record_rollback(triggers, exc)
                raise
            steps = tuple(steps)
            self._commit(system, steps, recorder, triggers)
        finally:
            system._in_unit -= 1
            system._balance_store()
        self._finish(system, steps)


# ----------------------------------------------------------------------
# Compilation and the per-class plan cache
# ----------------------------------------------------------------------


def compile_txn(compiled, event: str, spec):
    """Build the fused :class:`TxnPlan` for ``(compiled, event)``, or a
    decline-reason string (see the module docstring's taxonomy)."""
    decl = compiled.event(event)
    if decl is None:
        return "unknown_event"
    if decl.kind != "normal":
        return "lifecycle_event"
    if decl.hidden:
        return "hidden_event"
    if decl.binding is not None and decl.binding.object_name != compiled.name:
        return "bound_event"
    if compiled.base is not None:
        return "view_class"
    if compiled.callings_by_event.get(event):
        return "event_calling"
    if spec.global_callings.get((compiled.name, event)):
        return "event_calling"
    if compiled.role_births_by_event.get(event) or compiled.role_deaths_by_event.get(event):
        return "role_lifecycle"

    param_count = len(decl.param_sorts)
    perm_rules = []
    for index, rule in enumerate(compiled.permissions_by_event.get(event, ())):
        var_names = frozenset(v.name for v in rule.variables)
        matcher = _compile_matcher(
            rule.event.args, param_count, var_names, compiled
        )
        if matcher is _NEVER:
            continue
        perm_rules.append((index, rule, matcher))
    val_rules = []
    for rule in compiled.valuation_by_event.get(event, ()):
        var_names = frozenset(v.name for v in rule.variables)
        matcher = _compile_matcher(
            rule.event.args, param_count, var_names, compiled
        )
        if matcher is _NEVER:
            continue
        val_rules.append((rule, matcher))

    write_set = frozenset(rule.attribute for rule, _ in val_rules)
    relevant = []
    for index, constraint in enumerate(compiled.static_constraints):
        reads = constraint_read_set(constraint.formula, compiled)
        if reads is None or reads & write_set:
            relevant.append((index, constraint))

    automaton = compiled.protocol
    return TxnPlan(
        class_name=compiled.name,
        event=event,
        decl_name=decl.name,
        param_count=param_count,
        perm_rules=tuple(perm_rules),
        val_rules=tuple(val_rules),
        automaton=automaton,
        protocol_constrained=(
            automaton is not None and event in automaton.alphabet
        ),
        relevant_constraints=tuple(relevant),
        write_set=write_set,
        constraint_total=len(compiled.static_constraints),
        is_class_kind=compiled.info.kind == "class",
    )


def lookup_plan(compiled, event: str, spec):
    """The cached plan for ``(compiled, event)`` -- ``(plan, fresh)``
    where ``plan`` is None for declined pairs.  Plans and declines are
    cached on ``CompiledClass.txn_cache``; they are system-independent
    (permission mode and storage are branched per call), so systems
    sharing one compiled specification share the cache."""
    cache = compiled.txn_cache
    entry = cache.get(event)
    if entry is None:
        entry = compile_txn(compiled, event, spec)
        cache[event] = entry
        if isinstance(entry, str):
            STATS.declines += 1
            return None, True
        STATS.compiled += 1
        return entry, True
    if isinstance(entry, str):
        return None, False
    return entry, False


def decline_reason(compiled, event: str, spec) -> Optional[str]:
    """The decline-taxonomy label for a pair, or None when it fuses."""
    entry = compiled.txn_cache.get(event)
    if entry is None:
        entry = compile_txn(compiled, event, spec)
    return entry if isinstance(entry, str) else None


def clear_plan_cache(spec) -> None:
    """Drop every cached plan and decline of a compiled specification
    (the :meth:`ObjectBase.set_txn_compile` flip contract)."""
    for compiled in spec.classes.values():
        compiled.txn_cache.clear()
