"""Incremental enabledness: epoch-memoized permission probes.

``ObjectBase.is_permitted`` answers "would this occurrence (with
everything it calls) be admitted?" with a *dry transaction* -- full
occurrence semantics, always rolled back.  That is faithful but
expensive, and the active-object scheduler asks the question for every
parameterless active event of every alive instance on every step.  This
module makes the answer incremental instead of recomputed:

* every :class:`~repro.runtime.instance.Instance` carries a
  monotonically increasing **epoch**, bumped whenever its committed
  state changes (attribute write, trace append, life-cycle or role-set
  transition).  Dry probes mutate-and-restore, so the epoch is part of
  the transaction snapshot and rolls back with the state;
* the system keeps one **population epoch** per class, bumped whenever
  the class's registry or alive-set changes (instance registration,
  committed birth or death);
* while a probe runs, the system records its **read set** -- every
  instance observed or processed and every class population consulted
  (:class:`ProbeDependencies`).  All state reads route through
  ``Instance.observe`` / ``ObjectBase.population`` / ``ObjectBase.find``,
  so the read set is exact for the runtime's own evaluation paths;
* the verdict is cached on the probed instance keyed by ``(event,
  args)`` together with the dependency epochs
  (:class:`CachedVerdict`).  A later probe re-uses the verdict only
  when *every* recorded epoch still matches -- i.e. no object the probe
  actually read has changed since.

Memoization is sound because probe evaluation is a deterministic
function of the values it reads: if no read value changed (guaranteed
by unchanged epochs), every branch decision repeats and the verdict is
identical.  When a probe cannot account for its reads (it marked the
dependency set as *punted*), the verdict is simply not cached and the
next ask falls back to a fresh dry transaction -- the exhaustive-rescan
behaviour, per probe.

The soundness argument also assumes the *evaluator* that would re-run
is the one that ran: flipping an execution mode at runtime
(``set_term_compile``, ``set_txn_compile``) swaps compiled closures for
their interpreted twins (or fused transactions for the generic
pipeline), so both toggles drop every memoized verdict rather than
inherit it.  Fused transaction closures (``repro.runtime.txncompile``)
participate in the epoch contract unchanged: they perform exactly the
generic commit path's epoch arithmetic (one bump per attribute write,
one per committed trace step, rollback restoring the saved epoch), so
cached verdicts keyed on epochs stay valid across fused commits.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple


class ProbeStats:
    """Always-on (plain-int) cache accounting, independent of the
    observability layer; mirrored into metrics counters when telemetry
    is enabled."""

    __slots__ = ("hits", "misses", "invalidations", "punts")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.punts = 0

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = self.punts = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "punts": self.punts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeStats(hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations}, punts={self.punts})"
        )


class ProbeDependencies:
    """The read/touch set of one dry-transaction probe.

    ``instances`` maps ``id(instance) -> instance`` (identity-keyed so
    aspects of the same individual stay distinct); ``populations`` is
    the set of class names whose population/registry was consulted.
    ``punt()`` marks the probe as untrackable: its verdict must not be
    memoized.
    """

    __slots__ = ("instances", "populations", "punted")

    def __init__(self) -> None:
        self.instances: Dict[int, object] = {}
        self.populations: Set[str] = set()
        self.punted = False

    def note_instance(self, instance) -> None:
        self.instances[id(instance)] = instance

    def note_population(self, class_name: str) -> None:
        self.populations.add(class_name)

    def punt(self) -> None:
        self.punted = True


class CachedVerdict:
    """One memoized probe verdict with its dependency epochs.

    ``instance_epochs`` holds ``(instance, epoch_at_cache_time)`` pairs
    (recorded *after* the dry transaction rolled back, so they are
    committed epochs); ``population_epochs`` holds ``(class_name,
    epoch)`` pairs against the system's population-epoch table.
    """

    __slots__ = ("verdict", "instance_epochs", "population_epochs")

    def __init__(
        self,
        verdict: bool,
        instance_epochs: Tuple[Tuple[object, int], ...],
        population_epochs: Tuple[Tuple[str, int], ...],
    ):
        self.verdict = verdict
        self.instance_epochs = instance_epochs
        self.population_epochs = population_epochs

    def valid(self, population_epochs: Dict[str, int]) -> bool:
        """Do all recorded dependency epochs still match?"""
        for instance, epoch in self.instance_epochs:
            if instance.epoch != epoch:
                return False
        for class_name, epoch in self.population_epochs:
            if population_epochs.get(class_name, 0) != epoch:
                return False
        return True
