"""Instances: identified, stateful animations of one class.

An :class:`Instance` is one object aspect at runtime: an identity, the
encapsulated attribute state, the life-cycle flags, the recorded trace
and the permission monitors.  Role aspects (instances of ``view of``
classes) carry a ``base`` pointer to the instance they specialize;
attribute reads fall through the base chain, realising semantic
inheritance ("the same individual object").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple, TYPE_CHECKING

from repro.datatypes.evaluator import Environment, evaluate
from repro.datatypes.sorts import IdSort
from repro.datatypes.values import Value
from repro.diagnostics import EvaluationError
from repro.temporal.evaluation import Trace, TraceStep
from repro.runtime.compilespec import CompiledClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.objectbase import ObjectBase


class Instance:
    """A living (or dead) object aspect."""

    #: encoded plain-attribute values not yet materialized (set only on
    #: instances faulted in from a storage backend; attribute reads
    #: decode entries on demand -- faulting evaluates nothing)
    _lazy_state: Optional[Dict[str, object]] = None
    #: the backend record's attribute order, captured at fault time.
    #: observe() materializes lazy entries in *access* order, which
    #: would otherwise leak into trace-step state tuples and write-back
    #: records; materialize() and instance_to_json rebuild in this
    #: order so a faulted twin stays byte-identical to a never-evicted
    #: one.
    _state_order: Optional[Tuple[str, ...]] = None
    #: the epoch at which the storage backend last saw this instance
    #: (-1: never written; eviction writes back iff epoch differs)
    _clean_epoch: int = -1

    def __init__(
        self,
        compiled: CompiledClass,
        identity: Value,
        system: "ObjectBase",
        base: Optional["Instance"] = None,
    ):
        self.compiled = compiled
        self.identity = identity
        self.system = system
        #: attribute name -> value (plain attributes and components)
        self.state: Dict[str, Value] = {}
        #: parametrized attributes: name -> {args tuple -> value}
        self.param_state: Dict[str, Dict[Tuple[Value, ...], Value]] = {}
        self.born = False
        self.dead = False
        self.trace = Trace()
        #: modification epoch: bumped on every committed state change
        #: (attribute write, trace append, life-cycle or role-set
        #: transition).  Dry transactions snapshot and restore it, so a
        #: rolled-back probe leaves the epoch untouched.  Memoized
        #: permission probes key their verdicts on dependency epochs.
        self.epoch = 0
        #: events this instance has performed (maintained incrementally
        #: alongside the trace; drives pending_obligations in O(1))
        self.performed_events: Set[str] = set()
        #: memoized probe verdicts: (event, args) -> CachedVerdict
        self.probe_cache: Dict[Tuple[str, Tuple[Value, ...]], object] = {}
        #: per-permission-rule incremental monitors (id(rule) -> monitor)
        self.monitors: Dict[int, object] = {}
        #: the base aspect this role specializes, if any
        self.base = base
        #: role aspects of this instance, keyed by view class name
        self.roles: Dict[str, "Instance"] = {}
        #: behaviour-protocol configuration (frozen NFA state set), when
        #: the class declares behaviour patterns
        self.protocol_states = (
            compiled.protocol.initial if compiled.protocol is not None else None
        )

    # ------------------------------------------------------------------
    # Identity & life cycle
    # ------------------------------------------------------------------

    @property
    def class_name(self) -> str:
        return self.compiled.name

    @property
    def key(self):
        """The identity payload (hashable)."""
        return self.identity.payload

    @property
    def alive(self) -> bool:
        return self.born and not self.dead

    def __repr__(self) -> str:
        status = "alive" if self.alive else ("dead" if self.dead else "unborn")
        return f"<{self.class_name}({self.key!r}) {status}>"

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, name: str, args: Tuple[Value, ...] = ()) -> Value:
        """Observe attribute ``name`` (following derivation rules and the
        base-aspect chain)."""
        obs = self.system.obs
        if obs is not None and obs.count_attr_accesses:
            # inlined obs.on_attribute_read: this fires once per
            # attribute read inside permission formulas, the single
            # hottest hook in population-bound workloads
            values = obs._attr_reads.values
            key = (self.class_name,)
            values[key] = values.get(key, 0) + 1
        deps = self.system._probe_deps
        if deps is not None:
            deps.note_instance(self)
        rule = self.compiled.derivation_by_attribute.get(name)
        if rule is not None:
            env = self.environment()
            if rule.params:
                if len(args) != len(rule.params):
                    raise EvaluationError(
                        f"{self.class_name}.{name} expects {len(rule.params)} "
                        f"parameter(s), got {len(args)}"
                    )
                env = env.child(dict(zip(rule.params, args)))
            # Derivation rules are the hottest observe path: route them
            # through the closure compiler (cached on this class).
            prof = self.system.prof
            if prof is None:
                return self.system.eval_term(rule.expr, env, self.compiled)
            prof.begin(prof.node_name("derivation", self.class_name, name))
            try:
                return self.system.eval_term(rule.expr, env, self.compiled)
            finally:
                prof.end()
        if args:
            table = self.param_state.get(name)
            if table is not None and args in table:
                return table[args]
        else:
            if name in self.state:
                return self.state[name]
            lazy = self._lazy_state
            if lazy is not None and name in lazy:
                # fault-in: decode the paged-out value on first read
                from repro.storage.codec import value_from_json

                value = value_from_json(lazy.pop(name))
                self.state[name] = value
                return value
        if self.base is not None:
            return self.base.observe(name, args)
        raise EvaluationError(
            f"{self.class_name}({self.key!r}) has no observable value for "
            f"attribute {name!r}"
            + (f" with parameters {args}" if args else "")
        )

    def has_attribute(self, name: str) -> bool:
        info = self.compiled.info
        if name in info.attributes or name in info.components:
            return True
        return self.base.has_attribute(name) if self.base is not None else False

    def set_attribute(self, name: str, value: Value, args: Tuple[Value, ...] = ()) -> None:
        """Assign an attribute (valuation application).  Writes route to
        the aspect that *stores* the attribute (the base chain)."""
        obs = self.system.obs
        if obs is not None and obs.count_attr_accesses:
            obs.on_attribute_write(self.class_name, name)
        owner = self._storage_owner(name)
        owner.epoch += 1
        if owner is not self:
            # routed writes dirty the base aspect; pin it into the hot
            # set so its eventual eviction writes the mutation back
            store = getattr(self.system, "store", None)
            if store is not None and not store.direct:
                store.readmit(owner)
        if args:
            owner.param_state.setdefault(name, {})[args] = value
        else:
            owner.state[name] = value

    def record_step(self, step: TraceStep) -> None:
        """Append a committed trace step, keeping the performed-event
        set and the modification epoch in sync.  All committed trace
        appends (transaction commit, persistence restore) go through
        here."""
        self.trace.append(step)
        self.performed_events.add(step.event)
        self.epoch += 1

    def _storage_owner(self, name: str) -> "Instance":
        info = self.compiled.info
        own_template_attrs = {a.name for a in getattr(info.template, "attributes", ())}
        own_id_attrs = {a.name for a in info.id_attributes}
        own_components = set(info.components)
        if (
            name in own_template_attrs
            or name in own_id_attrs
            or name in own_components
            or self.base is None
        ):
            return self
        if self.base.has_attribute(name):
            return self.base._storage_owner(name)
        return self

    def materialize(self) -> None:
        """Decode every still-lazy attribute value into ``state``
        (whole-state reads cannot stay partial).  The state dict is
        rebuilt in the faulted record's attribute order: already-decoded
        entries landed in access order, and dict insertion order feeds
        straight into trace-step state tuples."""
        lazy = self._lazy_state
        if lazy is not None:
            from repro.storage.codec import value_from_json

            state = self.state
            rebuilt: Dict[str, Value] = {}
            for name in self._state_order or ():
                if name in state:
                    rebuilt[name] = state[name]
                elif name in lazy:
                    rebuilt[name] = value_from_json(lazy[name])
            for name, value in state.items():
                if name not in rebuilt:
                    rebuilt[name] = value
            state.clear()
            state.update(rebuilt)
            self._lazy_state = None
            self._state_order = None

    def snapshot_state(self) -> Dict[str, Value]:
        """A flat copy of the plain attribute state (trace steps)."""
        if self._lazy_state is not None:
            self.materialize()
        return dict(self.state)

    def merged_state(self) -> Dict[str, Value]:
        """The state visible from this aspect: the base chain's
        attributes overridden by this aspect's own."""
        if self._lazy_state is not None:
            self.materialize()
        merged = self.base.merged_state() if self.base is not None else {}
        merged.update(self.state)
        return merged

    def full_snapshot(self):
        """Everything needed to roll this instance back."""
        lazy = self._lazy_state
        return (
            dict(self.state),
            {name: dict(table) for name, table in self.param_state.items()},
            self.born,
            self.dead,
            self.protocol_states,
            self.epoch,
            # observe() pops lazy entries as they materialize; the
            # rollback image needs its own copy
            dict(lazy) if lazy is not None else None,
            self._state_order,
        )

    def restore(self, snapshot) -> None:
        (
            state,
            param_state,
            born,
            dead,
            protocol_states,
            epoch,
            lazy,
            order,
        ) = snapshot
        self.state = state
        self.param_state = param_state
        self.born = born
        self.dead = dead
        self.protocol_states = protocol_states
        self.epoch = epoch
        self._lazy_state = lazy
        self._state_order = order

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------

    def environment(self, bindings: Optional[Dict[str, Value]] = None) -> Environment:
        env: Environment = InstanceEnvironment(self)
        if bindings:
            env = env.child(bindings)
        return env


class InstanceEnvironment(Environment):
    """Resolution of names against an instance's state and its system.

    Lookup order: the instance's attributes/components (through the base
    chain), then ``inheriting`` aliases (which resolve to the identity of
    the shared base object), then failure.  ``SELF`` is the instance's
    identity; ``attribute_of`` resolves identity values to instances via
    the system registry; class populations come from the system.
    """

    def __init__(self, instance: Instance):
        self.instance = instance

    def lookup(self, name: str) -> Value:
        instance = self.instance
        if instance.has_attribute(name):
            return instance.observe(name)
        alias_target = self._alias_target(name)
        if alias_target is not None:
            return alias_target.identity
        raise EvaluationError(
            f"unbound name {name!r} in {instance.class_name}({instance.key!r})"
        )

    def _alias_target(self, name: str) -> Optional[Instance]:
        instance: Optional[Instance] = self.instance
        while instance is not None:
            base_name = instance.compiled.info.inheriting.get(name)
            if base_name is not None:
                return self.instance.system.single_object(base_name)
            instance = instance.base
        return None

    def lookup_self(self) -> Value:
        return self.instance.identity

    def attribute_of(self, obj: Value, name: str, args: tuple = ()) -> Value:
        if isinstance(obj.sort, IdSort):
            target = self.instance.system.resolve_instance(obj)
            if target is not None:
                if name == "surrogate":
                    return target.identity
                return target.observe(name, tuple(args))
            if name == "surrogate":
                return obj
            raise EvaluationError(
                f"no instance for identity {obj} (observing {name!r})"
            )
        return super().attribute_of(obj, name, args)

    def class_population(self, class_name: str) -> Iterable[Value]:
        return self.instance.system.population(class_name)

    def attribute_call(self, name: str, args: tuple) -> Value:
        if self.instance.has_attribute(name):
            return self.instance.observe(name, args)
        return super().attribute_call(name, args)

    def scope_values(self) -> Iterable[Value]:
        instance = self.instance
        if instance._lazy_state is not None:
            instance.materialize()
        return list(instance.state.values())


class SystemEnvironment(Environment):
    """Resolution against the whole object base, without a home instance.

    Used by join views and modules: names resolve only through explicit
    bindings; identity values resolve to instances through the system.
    """

    def __init__(self, system: "ObjectBase", bindings: Optional[Dict[str, Value]] = None):
        self.system = system
        self.bindings = dict(bindings or {})

    def lookup(self, name: str) -> Value:
        if name in self.bindings:
            return self.bindings[name]
        raise EvaluationError(f"unbound name {name!r}")

    def attribute_of(self, obj: Value, name: str, args: tuple = ()) -> Value:
        if isinstance(obj.sort, IdSort):
            target = self.system.resolve_instance(obj)
            if target is not None:
                if name == "surrogate":
                    return target.identity
                return target.observe(name, tuple(args))
            if name == "surrogate":
                return obj
            raise EvaluationError(f"no instance for identity {obj}")
        return super().attribute_of(obj, name, args)

    def class_population(self, class_name: str):
        return self.system.population(class_name)

    def scope_values(self):
        return list(self.bindings.values())
