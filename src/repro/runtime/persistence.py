"""Persistence: snapshot and restore a running object base.

The motivating notion of the paper is an *object base* -- "structured
and persistent database objects as well as object dynamics".  This
module gives the animator that persistence: :func:`dump_state` captures
every instance (identity, life-cycle flags, attribute state, recorded
trace, role links) as a JSON-compatible structure, and
:func:`restore_state` rebuilds a behaviourally equivalent object base
over the same compiled specification -- incremental permission monitors
are reconstructed exactly by replaying the recorded traces.

The specification itself is *not* serialised (it is text; store it next
to the snapshot).  Round-tripping is checked by the test suite: after
restore, observations, permissions and further evolution agree with the
original.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.datatypes.sorts import (
    ANY,
    IdSort,
    ListSort,
    MapSort,
    SetSort,
    TupleSort,
    base_sort,
)
from repro.datatypes.values import (
    Value,
    boolean,
    date,
    identity as make_identity,
    list_value,
    map_value,
    set_value,
    tuple_value,
)
from repro.diagnostics import RuntimeSpecError
from repro.temporal.evaluation import TraceStep
from repro.runtime.instance import Instance
from repro.runtime.objectbase import ObjectBase

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Value <-> JSON
# ----------------------------------------------------------------------

def value_to_json(value: Value) -> Any:
    """A JSON-compatible encoding of a value (sort-tagged)."""
    sort = value.sort
    if isinstance(sort, SetSort):
        return {"k": "set", "items": [value_to_json(v) for v in sorted(value.payload)]}
    if isinstance(sort, ListSort):
        return {"k": "list", "items": [value_to_json(v) for v in value.payload]}
    if isinstance(sort, MapSort):
        return {
            "k": "map",
            "entries": [
                [value_to_json(key), value_to_json(val)] for key, val in value.payload
            ],
        }
    if isinstance(sort, TupleSort):
        return {
            "k": "tuple",
            "fields": [[name, value_to_json(val)] for name, val in value.payload],
        }
    if isinstance(sort, IdSort):
        return {"k": "id", "class": sort.class_name, "key": _payload_to_json(value.payload)}
    if sort.name == "date":
        return {"k": "date", "ymd": list(value.payload)}
    if sort.name in ("bool", "boolean"):
        return {"k": "bool", "v": bool(value.payload)}
    return {"k": "scalar", "sort": sort.name, "v": value.payload}


def _payload_to_json(payload: Any) -> Any:
    if isinstance(payload, tuple):
        return {"t": [_payload_to_json(p) for p in payload]}
    return payload


def _payload_from_json(data: Any) -> Any:
    if isinstance(data, dict) and "t" in data:
        return tuple(_payload_from_json(p) for p in data["t"])
    return data


def value_from_json(data: Any) -> Value:
    """Decode :func:`value_to_json` output."""
    kind = data["k"]
    if kind == "set":
        return set_value([value_from_json(v) for v in data["items"]])
    if kind == "list":
        return list_value([value_from_json(v) for v in data["items"]])
    if kind == "map":
        return map_value(
            {value_from_json(k): value_from_json(v) for k, v in data["entries"]}
        )
    if kind == "tuple":
        return tuple_value({name: value_from_json(v) for name, v in data["fields"]})
    if kind == "id":
        return make_identity(data["class"], _payload_from_json(data["key"]))
    if kind == "date":
        return date(*data["ymd"])
    if kind == "bool":
        return boolean(data["v"])
    sort = base_sort(data["sort"]) or ANY
    return Value(sort, data["v"])


# ----------------------------------------------------------------------
# Object base -> JSON state
# ----------------------------------------------------------------------

def _step_to_json(step: TraceStep) -> Dict[str, Any]:
    return {
        "event": step.event,
        "args": [value_to_json(a) for a in step.args],
        "state": [[name, value_to_json(v)] for name, v in step.state],
    }


def _step_from_json(data: Dict[str, Any]) -> TraceStep:
    return TraceStep(
        event=data["event"],
        args=tuple(value_from_json(a) for a in data["args"]),
        state=tuple((name, value_from_json(v)) for name, v in data["state"]),
    )


def _instance_to_json(instance: Instance) -> Dict[str, Any]:
    return {
        "class": instance.class_name,
        "key": _payload_to_json(instance.key),
        "born": instance.born,
        "dead": instance.dead,
        "state": {name: value_to_json(v) for name, v in instance.state.items()},
        "param_state": [
            [
                name,
                [
                    [[value_to_json(a) for a in args], value_to_json(v)]
                    for args, v in table.items()
                ],
            ]
            for name, table in instance.param_state.items()
        ],
        "trace": [_step_to_json(s) for s in instance.trace],
        "base": (
            [instance.base.class_name, _payload_to_json(instance.base.key)]
            if instance.base is not None
            else None
        ),
    }


def dump_state(system: ObjectBase) -> Dict[str, Any]:
    """Snapshot the full dynamic state of ``system``."""
    instances = []
    for class_name in sorted(system.instances):
        for instance in system.instances[class_name].values():
            instances.append(_instance_to_json(instance))
    return {
        "format": FORMAT_VERSION,
        "permission_mode": system.permission_mode,
        "instances": instances,
        "class_objects": {
            name: [value_to_json(m) for m in sorted(obj.members)]
            for name, obj in system.class_objects.items()
        },
    }


def dump_json(system: ObjectBase, indent: Optional[int] = None) -> str:
    """:func:`dump_state` as a JSON string."""
    return json.dumps(dump_state(system), indent=indent, sort_keys=True)


def restore_state(system: ObjectBase, data: Dict[str, Any]) -> ObjectBase:
    """Restore a snapshot into a *fresh* object base built over the same
    specification.  Raises when the base already has instances."""
    if data.get("format") != FORMAT_VERSION:
        raise RuntimeSpecError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    if any(bucket for bucket in system.instances.values()):
        raise RuntimeSpecError("restore_state needs an empty object base")
    if system.recorder is not None:
        # The journal of a restored base does not cover its pre-snapshot
        # history; mark it so full-history replay verification skips it.
        system.recorder.origin = "restored"

    # Pass 1: build instances.
    for record in data["instances"]:
        class_name = record["class"]
        compiled = system.compiled_class(class_name)
        key = _payload_from_json(record["key"])
        instance = Instance(compiled, make_identity(class_name, key), system)
        instance.born = record["born"]
        instance.dead = record["dead"]
        instance.state = {
            name: value_from_json(v) for name, v in record["state"].items()
        }
        instance.param_state = {
            name: {
                tuple(value_from_json(a) for a in args): value_from_json(v)
                for args, v in table
            }
            for name, table in record["param_state"]
        }
        for step in record["trace"]:
            # record_step keeps the performed-event set and the
            # modification epoch consistent with the restored trace.
            instance.record_step(_step_from_json(step))
        system.instances.setdefault(class_name, {})[key] = instance

    # Pass 2: relink roles to their base aspects.
    for record in data["instances"]:
        if record["base"] is None:
            continue
        instance = system.instance(record["class"], _payload_from_json(record["key"]))
        base = system.instance(record["base"][0], _payload_from_json(record["base"][1]))
        instance.base = base
        base.roles[instance.class_name] = instance

    # Pass 3: class objects.
    for class_name, members in data.get("class_objects", {}).items():
        class_object = system.class_object(class_name)
        class_object.members = {value_from_json(m) for m in members}

    # Pass 4: rebuild incremental monitors and protocol configurations
    # exactly, by replaying traces.
    for bucket in system.instances.values():
        for instance in bucket.values():
            if system.permission_mode == "incremental":
                for step in instance.trace:
                    system._update_monitors(instance, step)
            automaton = instance.compiled.protocol
            if automaton is not None:
                states = automaton.initial
                for step in instance.trace:
                    if step.event in automaton.alphabet:
                        states = automaton.advance(states, step.event)
                instance.protocol_states = states

    # Pass 5: the instances above were inserted directly, bypassing
    # _register's population bump -- permission verdicts memoized
    # against the pre-restore (empty) populations would otherwise stay
    # "valid", and the scheduler's cached candidate list would miss the
    # restored instances.
    for class_name, bucket in system.instances.items():
        if bucket:
            system._bump_population(class_name)
    system.invalidate_probes()
    return system


def restore_json(system: ObjectBase, text: str) -> ObjectBase:
    """:func:`restore_state` from a JSON string."""
    return restore_state(system, json.loads(text))


# ----------------------------------------------------------------------
# Journal-aware snapshots: snapshot + journal suffix = incremental backup
# ----------------------------------------------------------------------

def dump_incremental(system: ObjectBase) -> Dict[str, Any]:
    """Snapshot ``system`` together with its journal high-water mark.

    With the event journal attached (``system.recorder``), the snapshot
    plus the journal records *after* ``journal_seq`` reconstruct any
    later state: restore the snapshot, then replay the suffix
    (:func:`restore_incremental`).  Without a recorder the mark is None
    and the snapshot stands alone."""
    recorder = getattr(system, "recorder", None)
    return {
        "format": FORMAT_VERSION,
        "snapshot": dump_state(system),
        "journal_seq": recorder.last_seq if recorder is not None else None,
    }


def restore_incremental(
    system: ObjectBase, data: Dict[str, Any], journal=None
) -> ObjectBase:
    """Restore a :func:`dump_incremental` backup into a fresh base, then
    replay the ``journal`` records issued after the snapshot's
    high-water mark (pass the journal the backup was taken under)."""
    if data.get("format") != FORMAT_VERSION:
        raise RuntimeSpecError(
            f"unsupported incremental backup format {data.get('format')!r}"
        )
    restore_state(system, data["snapshot"])
    seq = data.get("journal_seq")
    if journal is not None and seq is not None:
        from repro.observability.journal import replay_records

        replay_records(system, journal.records_since(seq))
    return system
