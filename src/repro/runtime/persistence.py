"""Persistence: snapshot and restore a running object base.

The motivating notion of the paper is an *object base* -- "structured
and persistent database objects as well as object dynamics".  This
module gives the animator that persistence: :func:`dump_state` captures
every instance (identity, life-cycle flags, attribute state, recorded
trace, role links) as a JSON-compatible structure, and
:func:`restore_state` rebuilds a behaviourally equivalent object base
over the same compiled specification -- incremental permission monitors
are reconstructed exactly by replaying the recorded traces (lazily, on
first permission check, via the object base's monitor auto-replay).

The value/step/instance codecs live in :mod:`repro.storage.codec`,
shared with the disk-resident storage backends; snapshots taken under
any backend are byte-identical (paged-out instances' records pass
through without being faulted in).

The specification itself is *not* serialised (it is text; store it next
to the snapshot).  Round-tripping is checked by the test suite: after
restore, observations, permissions and further evolution agree with the
original.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.datatypes.values import identity as make_identity
from repro.diagnostics import RuntimeSpecError
from repro.storage.codec import (
    instance_to_json as _instance_to_json,
    payload_from_json as _payload_from_json,
    payload_to_json as _payload_to_json,
    step_from_json as _step_from_json,
    step_to_json as _step_to_json,
    value_from_json,
    value_to_json,
)
from repro.runtime.instance import Instance
from repro.runtime.objectbase import ObjectBase

FORMAT_VERSION = 1

__all__ = [
    "FORMAT_VERSION",
    "dump_incremental",
    "dump_json",
    "dump_state",
    "restore_incremental",
    "restore_json",
    "restore_state",
    "value_from_json",
    "value_to_json",
]


# ----------------------------------------------------------------------
# Object base -> JSON state
# ----------------------------------------------------------------------

def dump_state(system: ObjectBase) -> Dict[str, Any]:
    """Snapshot the full dynamic state of ``system``.

    Class buckets are visited in sorted class order, instances in
    registration order -- the same order under every storage backend, so
    snapshots of equivalent bases are byte-identical.  Under a paging
    store, paged-out instances are dumped straight from their backend
    records without faulting them in."""
    instances = []
    store = system.store
    if store.direct:
        for class_name in sorted(system.instances):
            for instance in system.instances[class_name].values():
                instances.append(_instance_to_json(instance))
    else:
        for class_name in sorted(store.class_names()):
            for key in store.keys(class_name):
                instances.append(store.dump_record(class_name, key))
    return {
        "format": FORMAT_VERSION,
        "permission_mode": system.permission_mode,
        "instances": instances,
        "class_objects": {
            name: [value_to_json(m) for m in sorted(obj.members)]
            for name, obj in system.class_objects.items()
        },
    }


def dump_json(system: ObjectBase, indent: Optional[int] = None) -> str:
    """:func:`dump_state` as a JSON string."""
    return json.dumps(dump_state(system), indent=indent, sort_keys=True)


def restore_state(system: ObjectBase, data: Dict[str, Any]) -> ObjectBase:
    """Restore a snapshot into a *fresh* object base built over the same
    specification.  Raises when the base already has instances."""
    if data.get("format") != FORMAT_VERSION:
        raise RuntimeSpecError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    if any(bucket for bucket in system.instances.values()):
        raise RuntimeSpecError("restore_state needs an empty object base")
    if system.recorder is not None:
        # The journal of a restored base does not cover its pre-snapshot
        # history; mark it so full-history replay verification skips it.
        system.recorder.origin = "restored"

    # Pass 1: build instances.
    for record in data["instances"]:
        class_name = record["class"]
        compiled = system.compiled_class(class_name)
        key = _payload_from_json(record["key"])
        instance = Instance(compiled, make_identity(class_name, key), system)
        instance.born = record["born"]
        instance.dead = record["dead"]
        instance.state = {
            name: value_from_json(v) for name, v in record["state"].items()
        }
        instance.param_state = {
            name: {
                tuple(value_from_json(a) for a in args): value_from_json(v)
                for args, v in table
            }
            for name, table in record["param_state"]
        }
        for step in record["trace"]:
            # record_step keeps the performed-event set and the
            # modification epoch consistent with the restored trace.
            instance.record_step(_step_from_json(step))
        system.instances.setdefault(class_name, {})[key] = instance

    # Pass 2: relink roles to their base aspects.
    for record in data["instances"]:
        if record["base"] is None:
            continue
        instance = system.instance(record["class"], _payload_from_json(record["key"]))
        base = system.instance(record["base"][0], _payload_from_json(record["base"][1]))
        instance.base = base
        base.roles[instance.class_name] = instance

    # Pass 3: class objects.
    for class_name, members in data.get("class_objects", {}).items():
        class_object = system.class_object(class_name)
        class_object.members = {value_from_json(m) for m in members}

    # Pass 4: rebuild protocol configurations exactly, by replaying
    # traces.  Incremental permission monitors need no pass here: the
    # object base replays an instance's trace into a monitor when the
    # monitor is first needed (_create_monitor), which is precisely the
    # replay this pass used to perform eagerly.
    for bucket in system.instances.values():
        for instance in bucket.values():
            automaton = instance.compiled.protocol
            if automaton is not None:
                states = automaton.initial
                for step in instance.trace:
                    if step.event in automaton.alphabet:
                        states = automaton.advance(states, step.event)
                instance.protocol_states = states

    # Pass 5: the instances above were inserted directly, bypassing
    # _register's population bump -- permission verdicts memoized
    # against the pre-restore (empty) populations would otherwise stay
    # "valid", and the scheduler's cached candidate list would miss the
    # restored instances.
    for class_name, bucket in system.instances.items():
        if bucket:
            system._bump_population(class_name)
    system.invalidate_probes()
    # A paging store admitted every restored instance to its hot set;
    # trim back down to the configured bound (writebacks seed the
    # backend records).
    system._balance_store()
    return system


def restore_json(system: ObjectBase, text: str) -> ObjectBase:
    """:func:`restore_state` from a JSON string."""
    return restore_state(system, json.loads(text))


# ----------------------------------------------------------------------
# Journal-aware snapshots: snapshot + journal suffix = incremental backup
# ----------------------------------------------------------------------

def dump_incremental(system: ObjectBase) -> Dict[str, Any]:
    """Snapshot ``system`` together with its journal high-water mark.

    With the event journal attached (``system.recorder``), the snapshot
    plus the journal records *after* ``journal_seq`` reconstruct any
    later state: restore the snapshot, then replay the suffix
    (:func:`restore_incremental`).  Without a recorder the mark is None
    and the snapshot stands alone."""
    recorder = getattr(system, "recorder", None)
    return {
        "format": FORMAT_VERSION,
        "snapshot": dump_state(system),
        "journal_seq": recorder.last_seq if recorder is not None else None,
    }


def restore_incremental(
    system: ObjectBase, data: Dict[str, Any], journal=None
) -> ObjectBase:
    """Restore a :func:`dump_incremental` backup into a fresh base, then
    replay the ``journal`` records issued after the snapshot's
    high-water mark (pass the journal the backup was taken under)."""
    if data.get("format") != FORMAT_VERSION:
        raise RuntimeSpecError(
            f"unsupported incremental backup format {data.get('format')!r}"
        )
    restore_state(system, data["snapshot"])
    seq = data.get("journal_seq")
    if journal is not None and seq is not None:
        from repro.observability.journal import replay_records

        replay_records(system, journal.records_since(seq))
    return system
