"""The animator: executing TROLL specifications.

TROLL is a specification language; the paper gives its objects a process
semantics.  This package provides the executable counterpart: an *object
base* (:class:`~repro.runtime.objectbase.ObjectBase`) populated with
instances of the specification's classes, on which event occurrences are
driven subject to the specified semantics:

* **life cycles** -- instances come into existence through birth events
  and cease through death events; anything else is a
  :class:`~repro.diagnostics.LifecycleError`;
* **valuation** -- each occurrence updates attributes per the valuation
  rules, with right-hand sides evaluated in the pre-state;
* **permissions** -- past-temporal preconditions checked against the
  instance's history (incremental monitors by default; the naive
  re-evaluating mode is kept for ablation A1);
* **constraints** -- static constraints re-checked after every
  occurrence that touches an instance (or one of its role aspects);
* **event calling** -- the occurrence of a calling event forces the
  synchronous occurrence of the called events, across components,
  incorporated base objects and global interactions; parenthesised
  target sequences are *transaction calls*, processed in order;
* **atomicity** -- an occurrence together with everything it calls is
  one atomic unit: if any participant is not permitted or a constraint
  breaks, the whole unit rolls back;
* **roles/phases** -- a ``view of`` class whose birth event is bound to
  a base event comes into existence when that base event occurs, shares
  the base instance's state, and contributes its own constraints and
  permissions;
* **classes as objects** -- every object class has a class object with
  the implicit observations ``members``/``count`` maintained by
  birth/death occurrences;
* **active events** -- :meth:`~repro.runtime.objectbase.ObjectBase.step`
  fires one enabled active event, the scheduler loop for active objects.
"""

from repro.runtime.compilespec import CompiledClass, CompiledSpecification, compile_specification
from repro.runtime.instance import Instance, InstanceEnvironment, SystemEnvironment
from repro.runtime.objectbase import ClassObject, ObjectBase, Occurrence
from repro.runtime.persistence import dump_json, dump_state, restore_json, restore_state
from repro.runtime.explore import class_lts, explore_lts

__all__ = [
    "ClassObject",
    "CompiledClass",
    "CompiledSpecification",
    "Instance",
    "InstanceEnvironment",
    "ObjectBase",
    "Occurrence",
    "SystemEnvironment",
    "class_lts",
    "compile_specification",
    "explore_lts",
    "dump_json",
    "dump_state",
    "restore_json",
    "restore_state",
]
