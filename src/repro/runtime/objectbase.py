"""The object base: populations, occurrences, atomic synchronization.

:class:`ObjectBase` is the animator's heart.  It is built from a checked
specification (or directly from specification text) and then drives
event occurrences::

    system = ObjectBase(FULL_COMPANY_SPEC)
    sales = system.create("DEPT", {"id": "Sales"},
                          "establishment", [date(1991, 3, 1)])
    alice = system.create("PERSON",
                          {"Name": "alice", "BirthDate": date(1960, 1, 1)},
                          "hire_into", ["Research", 4000])
    system.occur(sales, "hire", [alice.identity])

Every ``occur``/``create`` call processes one *synchronization set*: the
triggering occurrence plus everything event calling forces (local
interaction rules, global interactions, role births/deaths), as one
atomic unit -- any permission denial, life-cycle violation or constraint
breach rolls the whole set back and raises.

The occurrence pipeline per event, in order: route to the declaring
aspect; life-cycle check; permission check (monitors or naive replay,
per ``permission_mode``); valuation (all right-hand sides evaluated on
the pre-state, then applied); role births/deaths; called events
(transaction-call targets processed in sequence).  After the whole set:
static-constraint check over every touched instance and its role
aspects, then commit (traces, monitors, class objects).
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.datatypes.compile import evaluate_term
from repro.datatypes.evaluator import Environment, MapEnvironment, evaluate
from repro.datatypes.sorts import IdSort
from repro.datatypes.terms import Term, Var
from repro.datatypes.values import Value, from_python, identity as make_identity
from repro.diagnostics import (
    CheckError,
    ConstraintViolation,
    EvaluationError,
    LifecycleError,
    OccurrenceRef,
    PermissionDenied,
    RuntimeSpecError,
)
from repro.observability.hooks import (
    _NULL_SPAN,
    _NULL_SPAN_CONTEXT,
    Observability,
    get_observability,
)
from repro.observability.profile import (
    PHASE_CALLED_EVENTS,
    PHASE_CONSTRAINT_SWEEP,
    PHASE_JOURNAL_COMMIT,
    PHASE_PERMISSION,
    PHASE_ROLE_UPDATES,
    PHASE_VALUATION,
)
from repro.observability.journal import (
    Journal,
    _NoJournal,
    get_capture as get_journal_capture,
)
from repro.lang import ast
from repro.lang.checker import CheckedSpecification, check_specification
from repro.lang.parser import parse_specification
from repro.temporal.evaluation import TraceStep, evaluate_formula_now
from repro.temporal.monitors import FormulaMonitor
from repro.runtime.compilespec import (
    CompiledClass,
    CompiledSpecification,
    compile_specification,
)
from repro.runtime.enabledness import CachedVerdict, ProbeDependencies, ProbeStats
from repro.runtime.instance import Instance
from repro.runtime.txncompile import (
    STATS as _TXN_STATS,
    clear_plan_cache as _clear_txn_plans,
    lookup_plan as _lookup_txn_plan,
)
from repro.storage.registry import InstanceStore


class Occurrence:
    """One event occurrence inside a synchronization set."""

    __slots__ = ("instance", "event", "args")

    def __init__(self, instance: Instance, event: str, args: Tuple[Value, ...]):
        self.instance = instance
        self.event = event
        self.args = args

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.instance.class_name}({self.instance.key!r}).{self.event}({inner})"


class ClassObject:
    """The class-as-object: implicit ``members``/``count`` observations
    maintained by member birth and death (Section 3: "a class is again an
    object, with a time varying set of objects as members")."""

    def __init__(self, class_name: str):
        self.class_name = class_name
        self.members: Set[Value] = set()
        from repro.temporal.evaluation import Trace

        self.trace = Trace()

    @property
    def count(self) -> int:
        return len(self.members)

    def record(self, event: str, member: Value) -> None:
        from repro.datatypes.values import integer

        # The step records the member delta (args) and the new count;
        # the membership at any trace point is the insert/delete prefix
        # folded together.  Snapshotting the full member set here made
        # every birth O(population) -- quadratic time and memory over a
        # class's life, which the disk-resident backends exist to avoid.
        state = {"count": integer(self.count)}
        self.trace.append(TraceStep(event=event, args=(member,), state=tuple(state.items())))


class _Transaction:
    """Book-keeping for one atomic synchronization set."""

    def __init__(self, system: "ObjectBase"):
        self.system = system
        self.processed: Set[Tuple[str, object, str, Tuple[Value, ...]]] = set()
        self.snapshots: Dict[int, Tuple[Instance, tuple]] = {}
        self.created: List[Instance] = []
        self.steps: List[Tuple[Instance, TraceStep, str]] = []
        self.depth = 0
        #: causal provenance for the journal, maintained only while a
        #: recorder is attached: ``parents[i]`` is the index of the step
        #: whose event calling / role coupling produced step ``i`` (None
        #: for triggers), ``call_stack`` the indices of the occurrences
        #: currently being processed.
        self.journaling = system.recorder is not None
        self.parents: List[Optional[int]] = []
        self.call_stack: List[int] = []

    def touch(self, instance: Instance) -> None:
        if id(instance) not in self.snapshots:
            self.snapshots[id(instance)] = (instance, instance.full_snapshot())
            store = self.system.store
            if not store.direct:
                # every touched instance must be hot at commit so the
                # paging store writes the mutation back on eviction
                store.readmit(instance)

    def touched_instances(self) -> List[Instance]:
        return [inst for inst, _ in self.snapshots.values()]

    def record(self, instance: Instance, step: TraceStep, kind: str) -> int:
        self.steps.append((instance, step, kind))
        if self.journaling:
            self.parents.append(self.call_stack[-1] if self.call_stack else None)
        return len(self.steps) - 1

    def rollback(self) -> None:
        for instance, snapshot in self.snapshots.values():
            instance.restore(snapshot)
        for instance in self.created:
            self.system._unregister(instance)

    def commit(self) -> None:
        incremental = self.system.permission_mode == "incremental"
        paging = not self.system.store.direct
        for instance, step, kind in self.steps:
            instance.record_step(step)
            if incremental:
                self.system._update_monitors(instance, step)
            if kind in ("birth", "death"):
                # The class's alive-set changed; cached verdicts that
                # consulted the population (or the role set of a base
                # aspect) must notice.
                self.system._bump_population(instance.class_name)
                if paging:
                    self.system.store.note_lifecycle(instance)
                base = instance.base
                while base is not None:
                    base.epoch += 1
                    if paging:
                        self.system.store.readmit(base)
                    base = base.base
            if instance.compiled.info.kind == "class":
                class_object = self.system.class_object(instance.class_name)
                if kind == "birth":
                    class_object.members.add(instance.identity)
                    class_object.record("insert_member", instance.identity)
                elif kind == "death":
                    class_object.members.discard(instance.identity)
                    class_object.record("delete_member", instance.identity)


class ObjectBase:
    """A running object society for one specification."""

    #: recursion guard for pathological calling cycles
    MAX_SYNC_DEPTH = 64

    def __init__(
        self,
        source: Union[str, ast.Specification, CheckedSpecification, CompiledSpecification],
        permission_mode: str = "incremental",
        check_constraints: bool = True,
        observability: Optional[Observability] = None,
        journal: Optional[Journal] = None,
        probe_cache: bool = True,
        term_compile: Optional[bool] = None,
        txn_compile: Optional[bool] = None,
        storage: Optional[str] = None,
        hot_set: Optional[int] = None,
    ):
        if permission_mode not in ("incremental", "naive"):
            raise ValueError("permission_mode must be 'incremental' or 'naive'")
        self.permission_mode = permission_mode
        self.check_constraints = check_constraints
        #: rule bodies evaluated through the closure compiler
        #: (repro.datatypes.compile) instead of the tree-walking
        #: interpreter.  None defers to REPRO_TERM_COMPILE (any value
        #: but "0" enables), so twin runs of unmodified scripts can
        #: compare both modes.  Flip at runtime via set_term_compile.
        if term_compile is None:
            term_compile = os.environ.get("REPRO_TERM_COMPILE", "1") != "0"
        self.term_compile = bool(term_compile)
        #: whole transactions executed through fused per-(class, event)
        #: closures (repro.runtime.txncompile) instead of the generic
        #: dry-transaction pipeline, which stays the behavioural oracle
        #: and the fallback for declined constructs.  None defers to
        #: REPRO_TXN_COMPILE (any value but "0" enables), so twin runs
        #: of unmodified scripts can compare both modes.  Flip at
        #: runtime via set_txn_compile.
        if txn_compile is None:
            txn_compile = os.environ.get("REPRO_TXN_COMPILE", "1") != "0"
        self.txn_compile = bool(txn_compile)
        #: epoch-memoized permission probes (False -> every probe is a
        #: fresh dry transaction, the exhaustive-rescan baseline)
        self.probe_caching = probe_cache
        #: read-set recorder of the probe currently running (None when
        #: no memoizing probe is in flight)
        self._probe_deps: Optional[ProbeDependencies] = None
        #: per-class population epochs (registry/alive-set changes)
        self._population_epochs: Dict[str, int] = {}
        #: bumped on instance (un)registration; keys the cached
        #: active-event candidate list
        self._registry_version = 0
        self._active_candidates: Optional[Tuple[int, List[Tuple[Instance, str]]]] = None
        #: probe-cache accounting (always on; cheap ints)
        self.probe_stats = ProbeStats()
        #: telemetry hooks (None -> the process-global default, which is
        #: itself None unless repro.observability.install() was called;
        #: the hot paths then pay a single attribute load + None test)
        self.obs: Optional[Observability] = (
            observability if observability is not None else get_observability()
        )
        if self.obs is not None:
            # probe_cache.* counters are live views over probe_stats --
            # no per-probe mirror callback on the hot path
            self.obs.attach_probe_source(self.probe_stats)
        #: the spec-level profiler, mirrored out of ``obs`` so profiled
        #: paths pay one attribute load + None test (the same dormant-
        #: hook contract as ``obs`` itself)
        self.prof = self.obs.profiler if self.obs is not None else None
        #: event-journal flight recorder, same disabled-by-default
        #: contract as ``obs`` (None -> the process-global journal
        #: capture if installed, else no recording); distinct from
        #: ``self.journal`` below, the plain in-memory occurrence list
        if isinstance(journal, _NoJournal):
            self.recorder: Optional[Journal] = None
        elif journal is not None:
            self.recorder = journal
        else:
            capture = get_journal_capture()
            self.recorder = capture.attach(self) if capture is not None else None
        if isinstance(source, str):
            source = parse_specification(source)
        if isinstance(source, ast.Specification):
            source = check_specification(source)
        if isinstance(source, CheckedSpecification):
            source.raise_if_errors()
            source = compile_specification(source)
        self.compiled: CompiledSpecification = source
        self.checked: CheckedSpecification = source.checked
        #: pluggable instance storage: "memory" (all-resident, the seed
        #: semantics), "paged[:dir]" or "sqlite[:path]".  None defers to
        #: REPRO_STORAGE; the hot-set bound to REPRO_STORAGE_HOT.
        if storage is None:
            storage = os.environ.get("REPRO_STORAGE") or "memory"
        if hot_set is None:
            hot_set = int(os.environ.get("REPRO_STORAGE_HOT", "0") or 0) or 4096
        self.store = InstanceStore(self, storage, hot_set)
        #: class name -> key payload -> Instance (in direct/memory mode
        #: the store's plain dicts, byte-for-byte the seed's registry;
        #: otherwise a read-through facade that faults on access)
        self.instances: Dict[str, Dict[object, Instance]] = self.store.mapping()
        if self.obs is not None and not self.store.direct:
            self.obs.attach_storage_source(self.store.stats)
        #: depth of atomic units in flight; the store only evicts (and
        #: population queries only serve their epoch-keyed caches) at
        #: depth 0, when every instance's flags are committed state
        self._in_unit = 0
        self._population_cache: Dict[str, Tuple[int, List[Value]]] = {}
        self._alive_cache: Dict[str, Tuple[int, List[Instance]]] = {}
        self._alive_key_cache: Dict[str, Tuple[int, List[object]]] = {}
        self.class_objects: Dict[str, ClassObject] = {}
        #: every occurrence committed, in order (for inspection/tests).
        #: Under a paging store an unbounded list would strongly pin
        #: every instance ever touched, so it becomes a bounded deque.
        self.journal: List[Occurrence] = (
            [] if self.store.direct else deque(maxlen=1024)
        )
        #: commit hooks: called with the occurrence list of each
        #: committed synchronization set (society-interface relays,
        #: Section 6's communicating object societies)
        self.on_commit: List = []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def compiled_class(self, class_name: str) -> CompiledClass:
        try:
            return self.compiled.classes[class_name]
        except KeyError:
            raise CheckError(f"unknown class {class_name!r}")

    def find(self, class_name: str, key) -> Optional[Instance]:
        deps = self._probe_deps
        if deps is not None:
            # Registry lookups depend on which identities exist -- a
            # population-epoch dependency (covers the not-found case).
            deps.note_population(class_name)
        if isinstance(key, Value):
            key = key.payload
        return self.instances.get(class_name, {}).get(key)

    def instance(self, class_name: str, key) -> Instance:
        found = self.find(class_name, key)
        if found is None:
            raise LifecycleError(f"no {class_name} instance with identity {key!r}")
        return found

    def single_object(self, name: str) -> Instance:
        """The unique instance of a single-object declaration."""
        compiled = self.compiled_class(name)
        if not compiled.is_single_object:
            raise CheckError(f"{name!r} is an object class, not a single object")
        found = self.find(name, name)
        if found is None:
            raise LifecycleError(f"single object {name!r} has not been created yet")
        return found

    def resolve_instance(self, identity: Value) -> Optional[Instance]:
        if not isinstance(identity.sort, IdSort):
            return None
        return self.find(identity.sort.class_name, identity.payload)

    def population(self, class_name: str) -> List[Value]:
        """Identities of the currently alive instances of a class.

        Memoized per population epoch while no atomic unit is in flight
        (mid-unit, life-cycle flags are uncommitted and the epoch has
        not advanced yet, so the scan must stay live)."""
        deps = self._probe_deps
        if deps is not None:
            deps.note_population(class_name)
        epoch = self._population_epochs.get(class_name, 0)
        at_rest = self._in_unit == 0
        if at_rest:
            cached = self._population_cache.get(class_name)
            if cached is not None and cached[0] == epoch:
                return cached[1]
        if self.store.direct:
            result = [
                inst.identity
                for inst in self.instances.get(class_name, {}).values()
                if inst.alive
            ]
        else:
            result = self.store.population_identities(class_name)
        if at_rest:
            self._population_cache[class_name] = (epoch, result)
        return result

    def alive_instances(self, class_name: str) -> List[Instance]:
        """The alive instances of a class (under a paging store this
        faults every one of them in; prefer :meth:`alive_keys` or
        :meth:`population` for membership-only questions)."""
        deps = self._probe_deps
        if deps is not None:
            deps.note_population(class_name)
        direct = self.store.direct
        epoch = self._population_epochs.get(class_name, 0)
        # only the all-resident runtime caches the instance list; under
        # a paging store the cache itself would pin the population
        at_rest = direct and self._in_unit == 0
        if at_rest:
            cached = self._alive_cache.get(class_name)
            if cached is not None and cached[0] == epoch:
                return cached[1]
        if direct:
            result = [
                i for i in self.instances.get(class_name, {}).values() if i.alive
            ]
        else:
            result = self.store.alive_instances(class_name)
        if at_rest:
            self._alive_cache[class_name] = (epoch, result)
        return result

    def alive_keys(self, class_name: str) -> List[object]:
        """Key payloads of the currently alive instances, in
        registration order, without faulting any instance in.  Memoized
        per population epoch at rest."""
        deps = self._probe_deps
        if deps is not None:
            deps.note_population(class_name)
        epoch = self._population_epochs.get(class_name, 0)
        at_rest = self._in_unit == 0
        if at_rest:
            cached = self._alive_key_cache.get(class_name)
            if cached is not None and cached[0] == epoch:
                return cached[1]
        if self.store.direct:
            result = [
                inst.key
                for inst in self.instances.get(class_name, {}).values()
                if inst.alive
            ]
        else:
            result = self.store.alive_keys(class_name)
        if at_rest:
            self._alive_key_cache[class_name] = (epoch, result)
        return result

    def class_object(self, class_name: str) -> ClassObject:
        if class_name not in self.compiled.classes:
            raise CheckError(f"unknown class {class_name!r}")
        if class_name not in self.class_objects:
            self.class_objects[class_name] = ClassObject(class_name)
        return self.class_objects[class_name]

    # ------------------------------------------------------------------
    # Creation and occurrence API
    # ------------------------------------------------------------------

    def create(
        self,
        class_name: str,
        identification: Optional[dict] = None,
        event: Optional[str] = None,
        args: Sequence[object] = (),
    ) -> Instance:
        """Create an instance: register the identity, then run the birth
        event (the class's unique birth event if ``event`` is omitted)."""
        compiled = self.compiled_class(class_name)
        instance = self._register(compiled, identification)
        birth = self._birth_event(compiled, event)
        try:
            self._occur_root(instance, birth.name, self._coerce_args(args))
        except Exception:
            if not instance.born:
                self._unregister(instance)
            raise
        return instance

    def occur(
        self,
        instance: Union[Instance, Tuple[str, object]],
        event: str,
        args: Sequence[object] = (),
    ) -> None:
        """Drive one event occurrence (plus its synchronization set)."""
        if not isinstance(instance, Instance):
            class_name, key = instance
            instance = self.instance(class_name, key)
        decl = instance.compiled.event(event)
        if decl is not None and decl.hidden:
            raise PermissionDenied(
                f"{instance.class_name}.{event} is hidden; it occurs only "
                "through event calling"
            )
        self._occur_root(instance, event, self._coerce_args(args))

    def is_permitted(
        self,
        instance: Instance,
        event: str,
        args: Sequence[object] = (),
        use_cache: Optional[bool] = None,
    ) -> bool:
        """Would this occurrence (with everything it calls) be admitted?

        Implemented as a dry transaction that always rolls back.  With
        probe caching on (the default), the verdict is memoized keyed on
        the epochs of every object the dry transaction actually read,
        so repeated probes against unchanged state cost a handful of
        integer comparisons.  ``use_cache=False`` forces a fresh dry
        transaction (the differential-testing oracle).
        """
        coerced = self._coerce_args(args)
        if use_cache is None:
            use_cache = self.probe_caching
        if not use_cache or self._probe_deps is not None or instance.system is not self:
            # Cache off, re-entrant probe, or a foreign instance: run the
            # plain dry transaction without touching the memo tables.
            return self._probe_fresh(instance, event, coerced)
        stats = self.probe_stats
        key = (event, coerced)
        entry = instance.probe_cache.get(key)
        if entry is not None:
            if entry.valid(self._population_epochs):
                stats.hits += 1
                return entry.verdict
            del instance.probe_cache[key]
            stats.invalidations += 1
        stats.misses += 1
        deps = ProbeDependencies()
        deps.note_instance(instance)
        self._probe_deps = deps
        try:
            verdict = self._probe_fresh(instance, event, coerced)
        finally:
            self._probe_deps = None
        if deps.punted:
            stats.punts += 1
        else:
            # Epochs are recorded *after* the dry transaction rolled
            # back, so they are the committed (pre-probe) epochs.
            pop_epochs = self._population_epochs
            instance.probe_cache[key] = CachedVerdict(
                verdict,
                tuple((dep, dep.epoch) for dep in deps.instances.values()),
                tuple(
                    (name, pop_epochs.get(name, 0)) for name in deps.populations
                ),
            )
        return verdict

    def _probe_fresh(
        self, instance: Instance, event: str, coerced: Tuple[Value, ...]
    ) -> bool:
        """One uncached dry transaction (always rolled back)."""
        obs = self.obs
        prof = self.prof
        if prof is not None:
            prof.begin_root(prof.node_name("probe", instance.class_name, event))
        self._in_unit += 1
        txn = _Transaction(self)
        try:
            self._process(txn, instance, event, coerced)
            self._check_static_constraints(txn)
            if obs is not None and obs.enabled:
                obs.metrics.counter("probes.admitted").inc()
            return True
        except RuntimeSpecError:
            if obs is not None and obs.enabled:
                obs.metrics.counter("probes.rejected").inc()
            return False
        finally:
            txn.rollback()
            self._in_unit -= 1
            self._balance_store()
            if prof is not None:
                prof.end_root()

    def invalidate_probes(self) -> None:
        """Drop every memoized probe verdict (escape hatch for callers
        that mutate instance state behind the runtime's back)."""
        if self.store.direct:
            for bucket in self.instances.values():
                for instance in bucket.values():
                    instance.probe_cache.clear()
        else:
            # paged-out instances carry no verdicts (cleared at
            # eviction); the residents are the complete set
            self.store.invalidate_resident_probe_caches()
        self._active_candidates = None

    # ------------------------------------------------------------------
    # Rule-body evaluation (closure compiler seam)
    # ------------------------------------------------------------------

    def eval_term(
        self,
        term: Term,
        env: Optional[Environment] = None,
        owner: Optional[CompiledClass] = None,
    ) -> Value:
        """Evaluate a rule body: through the closure compiler when
        ``term_compile`` is on (compiled bodies cached on ``owner``, the
        rule's :class:`CompiledClass`, when given), through the
        tree-walking interpreter otherwise.  The flag is consulted per
        call, so monitors and views holding this bound method follow
        :meth:`set_term_compile` flips immediately."""
        if not self.term_compile:
            return evaluate(term, env)
        return evaluate_term(
            term,
            env,
            cache=None if owner is None else owner.term_cache,
        )

    def _class_term_eval(self, owner: CompiledClass):
        """A ``(term, env) -> Value`` evaluator whose compiled bodies are
        cached on ``owner`` (for monitors and the naive permission path,
        whose rule terms belong to one class)."""

        def term_eval(term: Term, env: Optional[Environment] = None) -> Value:
            return self.eval_term(term, env, owner)

        return term_eval

    def set_term_compile(self, enabled: bool) -> None:
        """Flip between compiled and interpreted rule evaluation.

        Also drops every memoized probe verdict: cached enabledness
        entries were produced by the *other* evaluation path, and the
        soundness argument for reusing them ("unchanged epochs imply an
        identical re-evaluation") holds only while the evaluator that
        would re-run is the one that ran.  Swapping a compiled
        permission body for its interpreted fallback (or back) must
        therefore invalidate, not inherit, the cache."""
        enabled = bool(enabled)
        if enabled == self.term_compile:
            return
        self.term_compile = enabled
        self.invalidate_probes()

    def set_txn_compile(self, enabled: bool) -> None:
        """Flip between fused transaction closures and the generic
        pipeline.

        Mirrors :meth:`set_term_compile`'s invalidation contract:
        memoized probe verdicts were produced by the *other* execution
        path and must be dropped, not inherited.  The compiled-plan
        cache is cleared as well -- the specification may be shared by
        systems in either mode, and a stale plan compiled before a flip
        must not survive into the next enable."""
        enabled = bool(enabled)
        if enabled == self.txn_compile:
            return
        self.txn_compile = enabled
        self.invalidate_probes()
        _clear_txn_plans(self.compiled)

    def _active_schedule(self) -> List[Tuple[Instance, str]]:
        """The scheduler's candidate list -- every parameterless active
        event of every registered instance, in deterministic registry
        order -- cached until the registry changes.  Liveness is checked
        at iteration time (death does not change the registry)."""
        cached = self._active_candidates
        if cached is not None and cached[0] == self._registry_version:
            return cached[1]
        candidates = [
            (instance, event.name)
            for class_name in sorted(self.instances)
            for instance in self.instances[class_name].values()
            for event in self.compiled_class(class_name).active_events()
            if not event.param_sorts
        ]
        self._active_candidates = (self._registry_version, candidates)
        return candidates

    def _active_schedule_keys(self) -> List[Tuple[str, object, str]]:
        """The paging-store twin of :meth:`_active_schedule`: the same
        candidates as (class, key, event) triples, so the cached list
        pins no instances.  Instances are resolved (and faulted) one at
        a time when the scheduler actually probes them."""
        cached = self._active_candidates
        if cached is not None and cached[0] == self._registry_version:
            return cached[1]
        store = self.store
        candidates: List[Tuple[str, object, str]] = []
        for class_name in sorted(store.class_names()):
            events = [
                event.name
                for event in self.compiled_class(class_name).active_events()
                if not event.param_sorts
            ]
            if not events:
                continue
            for key in store.keys(class_name):
                for event_name in events:
                    candidates.append((class_name, key, event_name))
        self._active_candidates = (self._registry_version, candidates)
        return candidates

    def step(self, order: Optional[Sequence[Tuple[str, object, str]]] = None) -> Optional[Occurrence]:
        """Fire one enabled *active* event (the scheduler step for active
        objects).  Candidates are parameterless active events of alive
        instances, probed in deterministic registry order (or the given
        ``order`` of (class, key, event) triples; entries naming an
        unknown or not-alive identity are skipped, matching the default
        path's filter).  Probes go through the epoch-memoized cache, so
        only candidates whose last verdict was invalidated by an actual
        dependency change are re-probed.  Returns the fired occurrence
        or None when no active event is enabled."""
        if order is None and not self.store.direct:
            # the cached candidate list holds (class, key, event)
            # triples so it pins nothing; aliveness is answered by the
            # registration index before any instance is faulted in
            store = self.store
            for class_name, key, event_name in self._active_schedule_keys():
                if not store.is_alive(class_name, key):
                    continue
                instance = self.find(class_name, key)
                if instance is None or not instance.alive:
                    continue
                if self.is_permitted(instance, event_name):
                    self._occur_root(instance, event_name, ())
                    return Occurrence(instance, event_name, ())
            return None
        candidates: Iterable[Tuple[Instance, str]]
        if order is not None:
            candidates = [
                (found, event_name)
                for class_name, key, event_name in order
                for found in (self.find(class_name, key),)
                if found is not None
            ]
        else:
            candidates = self._active_schedule()
        for instance, event_name in candidates:
            if not instance.alive:
                continue
            if self.is_permitted(instance, event_name):
                self._occur_root(instance, event_name, ())
                return Occurrence(instance, event_name, ())
        return None

    def run_active(self, max_steps: int = 100) -> List[Occurrence]:
        """Run the active-event scheduler until quiescence (or the step
        bound)."""
        fired: List[Occurrence] = []
        for _ in range(max_steps):
            occurrence = self.step()
            if occurrence is None:
                break
            fired.append(occurrence)
        return fired

    def enabled_events(
        self,
        instance: Instance,
        candidate_args: Optional[Dict[str, List[Sequence[object]]]] = None,
    ) -> List[Tuple[str, Tuple[Value, ...]]]:
        """The admissible next occurrences of ``instance`` -- the
        simulation explorer.

        Parameterless events are probed directly; for events with
        parameters, candidate argument lists must be supplied via
        ``candidate_args`` (event name -> list of argument tuples),
        since parameter domains are unbounded.  Each candidate is tried
        in a dry transaction (full semantics: permissions, protocol,
        constraints, called events).
        """
        candidate_args = candidate_args or {}
        results: List[Tuple[str, Tuple[Value, ...]]] = []
        for name, decl in sorted(instance.compiled.info.all_events().items()):
            if decl.param_sorts:
                for args in candidate_args.get(name, ()):
                    coerced = self._coerce_args(args)
                    if self.is_permitted(instance, name, coerced):
                        results.append((name, coerced))
            else:
                if self.is_permitted(instance, name, ()):
                    results.append((name, ()))
        return results

    def pending_obligations(self, instance: Instance) -> List[str]:
        """Obligation events the instance has not yet performed (its
        death events stay denied while this list is non-empty).  Uses
        the performed-event set maintained incrementally alongside the
        trace, so the check is O(obligations), not O(trace)."""
        performed = instance.performed_events
        return [
            event
            for event in instance.compiled.obligations
            if event not in performed
        ]

    def pending_obligations_scan(self, instance: Instance) -> List[str]:
        """The O(trace) reference implementation of
        :meth:`pending_obligations`, rebuilding the performed-event set
        from the whole trace.  Kept as the differential-test oracle for
        the incremental set."""
        performed = {step.event for step in instance.trace}
        return [
            event
            for event in instance.compiled.obligations
            if event not in performed
        ]

    def get(self, instance: Union[Instance, Tuple[str, object]], attribute: str, args: Sequence[object] = ()) -> Value:
        """Observe an attribute (read-only interface).  Hidden
        attributes are not part of the public observation interface."""
        if not isinstance(instance, Instance):
            class_name, key = instance
            instance = self.instance(class_name, key)
        decl = instance.compiled.info.attributes.get(attribute)
        if decl is not None and decl.hidden:
            raise PermissionDenied(
                f"{instance.class_name}.{attribute} is hidden; it is "
                "observable only from the object's own rules"
            )
        return instance.observe(attribute, self._coerce_args(args))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register(self, compiled: CompiledClass, identification: Optional[dict]) -> Instance:
        if compiled.is_single_object:
            payload: object = compiled.name
            id_values: Dict[str, Value] = {}
        else:
            id_attrs = compiled.info.id_attributes
            if not id_attrs:
                raise CheckError(
                    f"class {compiled.name} has no identification attributes; "
                    "supply an explicit identity via identification={'id': ...}"
                )
            identification = identification or {}
            id_values = {}
            payload_parts = []
            for attr in id_attrs:
                if attr.name not in identification:
                    raise CheckError(
                        f"missing identification attribute {attr.name!r} for "
                        f"{compiled.name}"
                    )
                value = from_python(identification[attr.name])
                id_values[attr.name] = value
                payload_parts.append(value.payload)
            payload = payload_parts[0] if len(payload_parts) == 1 else tuple(payload_parts)
        existing = self.find(compiled.name, payload)
        if existing is not None:
            if existing.dead:
                raise LifecycleError(
                    f"{compiled.name} identity {payload!r} already lived and "
                    "died; identities are not reused"
                )
            raise LifecycleError(
                f"{compiled.name} identity {payload!r} already exists"
            )
        identity = make_identity(compiled.name, payload)
        instance = Instance(compiled, identity, self)
        instance.state.update(id_values)
        self.instances.setdefault(compiled.name, {})[payload] = instance
        self._bump_population(compiled.name)
        return instance

    def _unregister(self, instance: Instance) -> None:
        bucket = self.instances.get(instance.class_name, {})
        if bucket.get(instance.key) is instance:
            del bucket[instance.key]
        self._bump_population(instance.class_name)
        if instance.base is not None:
            instance.base.roles.pop(instance.class_name, None)
            # The base aspect's role set changed; verdicts that iterated
            # its roles must notice.
            instance.base.epoch += 1

    def _bump_population(self, class_name: str) -> None:
        """Advance the class's population epoch (registry or alive-set
        change) and invalidate the cached scheduler candidate list."""
        epochs = self._population_epochs
        epochs[class_name] = epochs.get(class_name, 0) + 1
        self._registry_version += 1

    def _balance_store(self) -> None:
        """Let the paging store evict down to its hot-set bound, but
        only at a safe point: no atomic unit in flight (uncommitted
        state must never be written back, and every in-flight unit holds
        strong references to its touched instances)."""
        if self._in_unit == 0 and not self.store.direct:
            self.store.balance()

    def _birth_event(self, compiled: CompiledClass, name: Optional[str]) -> ast.EventDecl:
        births = compiled.info.birth_events()
        if name is not None:
            decl = compiled.event(name)
            if decl is None or decl.kind != "birth":
                raise CheckError(
                    f"{compiled.name} has no birth event named {name!r}"
                )
            return decl
        if len(births) != 1:
            raise CheckError(
                f"{compiled.name} has {len(births)} birth events; pass one "
                "explicitly"
            )
        return births[0]

    def _coerce_args(self, args: Sequence[object]) -> Tuple[Value, ...]:
        coerced = []
        for arg in args:
            if isinstance(arg, Instance):
                coerced.append(arg.identity)
            else:
                coerced.append(from_python(arg))
        return tuple(coerced)

    # ------------------------------------------------------------------
    # The occurrence engine
    # ------------------------------------------------------------------

    def _occur_root(self, instance: Instance, event: str, args: Tuple[Value, ...]) -> None:
        if self.txn_compile:
            plan, fresh = _lookup_txn_plan(instance.compiled, event, self.compiled)
            if plan is not None and plan.eligible(self, instance):
                obs = self.obs
                if obs is not None and obs.enabled:
                    if not fresh:
                        _TXN_STATS.cache_hits += 1
                    plan.run_observed(self, obs, instance, args)
                    return
                if self.prof is None:
                    if not fresh:
                        _TXN_STATS.cache_hits += 1
                    plan.run_quiet(self, instance, args)
                    return
            _TXN_STATS.fallbacks += 1
        self._run_unit(((instance, event, args),))

    def _run_unit(
        self, items: Sequence[Tuple[Instance, str, Tuple[Value, ...]]]
    ) -> None:
        """Drive one atomic unit (a synchronization set) to commit or
        rollback.  ``items`` are the triggering occurrences (one for a
        plain ``occur``; several for a transaction-call sequence)."""
        obs = self.obs
        if obs is not None and obs.enabled:
            self._run_unit_observed(obs, items)
            return
        recorder = self.recorder
        triggers = recorder.snapshot_triggers(items) if recorder is not None else None
        self._in_unit += 1
        try:
            txn = _Transaction(self)
            try:
                for instance, event, args in items:
                    self._process(txn, instance, event, args)
                self._check_static_constraints(txn)
            except Exception as exc:
                txn.rollback()
                if recorder is not None:
                    recorder.record_rollback(triggers, exc)
                raise
            if recorder is not None:
                recorder.record_commit(txn, triggers)
            txn.commit()
        finally:
            self._in_unit -= 1
            self._balance_store()
        committed = [Occurrence(inst, step.event, step.args) for inst, step, _ in txn.steps]
        self.journal.extend(committed)
        self._notify_commit(committed)

    def _run_unit_observed(
        self,
        obs: Observability,
        items: Sequence[Tuple[Instance, str, Tuple[Value, ...]]],
    ) -> None:
        """The instrumented twin of :meth:`_run_unit`: a ``sync_set``
        root span, a ``constraint_check`` phase, and commit/rollback
        metrics (rolled-back occurrences count as aborted)."""
        first = items[0]
        recorder = self.recorder
        triggers = recorder.snapshot_triggers(items) if recorder is not None else None
        prof = self.prof
        if prof is not None:
            # one profile root per atomic unit, keyed by its trigger;
            # end_root unwinds whatever a rollback exception leaked
            prof.begin_root(
                prof.node_name("unit", first[0].class_name, first[1])
            )
        if obs.tracing:
            # span attributes (f-string + repr) are only worth building
            # when a span will actually record them
            span_context = obs.tracer.span(
                "sync_set",
                trigger=f"{first[0].class_name}({first[0].key!r}).{first[1]}",
            )
        else:
            span_context = _NULL_SPAN_CONTEXT
        self._in_unit += 1
        try:
            with span_context as root:
                txn = _Transaction(self)
                try:
                    for instance, event, args in items:
                        self._process(txn, instance, event, args)
                    if prof is not None:
                        prof.begin(PHASE_CONSTRAINT_SWEEP)
                    with obs.phase("constraint_check"):
                        self._check_static_constraints(txn)
                    if prof is not None:
                        prof.end()
                except Exception as exc:
                    txn.rollback()
                    reason = type(exc).__name__
                    failed = getattr(exc, "occurrence", None)
                    root.set("outcome", "rolled_back")
                    root.set("rollback_reason", reason)
                    if failed is not None:
                        root.set("failed_occurrence", str(failed))
                    obs.on_rollback(
                        len(txn.steps), reason, str(failed) if failed else ""
                    )
                    if recorder is not None:
                        recorder.record_rollback(triggers, exc)
                    raise
                if prof is not None:
                    prof.begin(PHASE_JOURNAL_COMMIT)
                if recorder is not None:
                    recorder.record_commit(txn, triggers)
                txn.commit()
                if prof is not None:
                    prof.end()
                committed = [
                    Occurrence(inst, step.event, step.args) for inst, step, _ in txn.steps
                ]
                root.set("outcome", "committed")
                root.set("sync_set_size", len(committed))
                obs.on_commit(len(committed))
                self.journal.extend(committed)
                self._notify_commit(committed)
        finally:
            self._in_unit -= 1
            self._balance_store()
            if prof is not None:
                prof.end_root()

    def _notify_commit(self, committed: List[Occurrence]) -> None:
        for hook in list(self.on_commit):
            hook(committed)

    def _process(
        self, txn: _Transaction, instance: Instance, event: str, args: Tuple[Value, ...]
    ) -> None:
        txn.depth += 1
        if txn.depth > self.MAX_SYNC_DEPTH:
            raise RuntimeSpecError(
                f"event calling exceeded depth {self.MAX_SYNC_DEPTH} "
                f"(at {instance.class_name}.{event}) -- calling cycle?"
            )
        try:
            obs = self.obs
            if obs is not None and obs.enabled:
                if obs.tracing:
                    with obs.tracer.span(
                        "occurrence",
                        **{
                            "class": instance.class_name,
                            "event": event,
                            "identity": repr(instance.key),
                        },
                    ) as span:
                        self._process_body(txn, instance, event, args, obs, span)
                else:
                    self._process_body(
                        txn, instance, event, args, obs, _NULL_SPAN
                    )
            else:
                self._process_body(txn, instance, event, args, None, None)
        except RuntimeSpecError as exc:
            # Attach the failing occurrence of the synchronization set,
            # so rollback diagnostics and trace spans agree on the
            # culprit.  The innermost occurrence wins (tag only once).
            if exc.occurrence is None:
                exc.occurrence = OccurrenceRef(
                    instance.class_name, event, instance.key
                )
            raise
        finally:
            txn.depth -= 1

    def _process_body(
        self,
        txn: _Transaction,
        instance: Instance,
        event: str,
        args: Tuple[Value, ...],
        obs: Optional[Observability],
        span,
    ) -> None:
        deps = self._probe_deps
        if deps is not None:
            # The verdict depends on every processed instance's
            # life-cycle flags, protocol configuration and monitor
            # state -- all covered by the instance epoch.
            deps.note_instance(instance)
        decl = instance.compiled.event(event)
        if decl is None:
            raise CheckError(
                f"{instance.class_name} has no event {event!r}"
            )
        if len(args) != len(decl.param_sorts):
            raise CheckError(
                f"{instance.class_name}.{event} expects "
                f"{len(decl.param_sorts)} argument(s), got {len(args)}"
            )
        # Route inherited (bound) normal events to the declaring
        # aspect: PERSON owns ChangeSalary even when called on the
        # MANAGER role.
        if (
            decl.binding is not None
            and decl.binding.object_name != instance.class_name
            and instance.base is not None
        ):
            target = instance
            while target.base is not None and target.class_name != decl.binding.object_name:
                target = target.base
            if target is not instance:
                if obs is not None:
                    span.set(
                        "routed_to",
                        f"{target.class_name}.{decl.binding.event_name}",
                    )
                self._process(txn, target, decl.binding.event_name, args)
                return

        key = (instance.class_name, instance.key, event, args)
        if key in txn.processed:
            if obs is not None:
                span.set("deduplicated", True)
            return
        txn.processed.add(key)

        if obs is None:
            new_protocol_states = self._phase_checks(instance, decl, event, args)
            assignments = self._plan_valuation(instance, event, args)
            self._phase_apply(
                txn, instance, decl, event, args, new_protocol_states, assignments
            )
            self._phase_roles(txn, instance, event, args)
            self._phase_calling(txn, instance, event, args)
            if txn.journaling:
                txn.call_stack.pop()
        else:
            prof = self.prof
            if prof is not None:
                prof.begin(
                    prof.node_name("occurrence", instance.class_name, event)
                )
                prof.begin(PHASE_PERMISSION)
            with obs.phase("permission_check"):
                new_protocol_states = self._phase_checks(instance, decl, event, args)
            if prof is not None:
                prof.end()
                prof.begin(PHASE_VALUATION)
            with obs.phase("valuation"):
                assignments = self._plan_valuation(instance, event, args)
                self._phase_apply(
                    txn, instance, decl, event, args, new_protocol_states, assignments
                )
            if prof is not None:
                prof.end()
                prof.begin(PHASE_ROLE_UPDATES)
            with obs.phase("role_updates"):
                self._phase_roles(txn, instance, event, args)
            if prof is not None:
                prof.end()
                prof.begin(PHASE_CALLED_EVENTS)
            with obs.phase("called_events"):
                self._phase_calling(txn, instance, event, args)
            if prof is not None:
                prof.end()
                prof.end()  # the occurrence node
            if txn.journaling:
                txn.call_stack.pop()

    def _phase_checks(
        self,
        instance: Instance,
        decl: ast.EventDecl,
        event: str,
        args: Tuple[Value, ...],
    ):
        """Life-cycle, permission (own + role aspects) and protocol
        checks; returns the successor protocol states (or None)."""
        self._check_lifecycle(instance, decl)
        self._check_permissions(instance, event, args)
        for role in self._all_roles(instance):
            self._check_permissions(role, event, args)
        return self._check_protocol(instance, decl, event)

    def _phase_apply(
        self,
        txn: _Transaction,
        instance: Instance,
        decl: ast.EventDecl,
        event: str,
        args: Tuple[Value, ...],
        new_protocol_states,
        assignments,
    ) -> None:
        """Apply the occurrence: life-cycle flags, valuation results,
        and the trace steps for the instance and its role aspects."""
        txn.touch(instance)
        if new_protocol_states is not None:
            instance.protocol_states = new_protocol_states
        kind = decl.kind
        if kind == "birth":
            instance.born = True
            txn.created.append(instance)
            self._apply_initial_values(instance)
            self._check_initial_constraints(instance)
        elif kind == "death":
            instance.dead = True
        for attribute, attr_args, value in assignments:
            instance.set_attribute(attribute, value, attr_args)

        step = TraceStep(
            event=event,
            args=args,
            state=tuple(instance.merged_state().items()),
        )
        index = txn.record(instance, step, kind)
        if txn.journaling:
            # Everything recorded until _process_body pops (role echoes,
            # role births/deaths, called events) was caused by this step.
            txn.call_stack.append(index)
        for role in self._all_roles(instance):
            txn.touch(role)
            txn.record(
                role,
                TraceStep(event=event, args=args, state=tuple(role.merged_state().items())),
                "normal",
            )

    def _phase_roles(
        self, txn: _Transaction, instance: Instance, event: str, args: Tuple[Value, ...]
    ) -> None:
        """Role births and deaths bound to this event."""
        for view_name in instance.compiled.role_births_by_event.get(event, []):
            self._birth_role(txn, instance, view_name, event, args)
        for view_name in instance.compiled.role_deaths_by_event.get(event, []):
            role = self._find_role(instance, view_name)
            if role is not None and role.alive:
                txn.touch(role)
                role.dead = True
                txn.record(
                    role,
                    TraceStep(event=event, args=args, state=tuple(role.merged_state().items())),
                    "death",
                )

    def _phase_calling(
        self, txn: _Transaction, instance: Instance, event: str, args: Tuple[Value, ...]
    ) -> None:
        """Event calling: local interaction rules, then globals."""
        for rule in instance.compiled.callings_by_event.get(event, []):
            self._fire_calling_rule(txn, instance, rule, args)
        for rule in self.compiled.global_callings.get(
            (instance.class_name, event), []
        ):
            self._fire_global_rule(txn, instance, rule, args)

    def _all_roles(self, instance: Instance):
        """All alive role aspects of ``instance``, transitively (a
        WORKSTATION is a role of the COMPUTER role of the device)."""
        for role in instance.roles.values():
            if role.alive:
                yield role
                yield from self._all_roles(role)

    def _find_role(self, instance: Instance, view_name: str) -> Optional[Instance]:
        for role in instance.roles.values():
            if role.class_name == view_name:
                return role
            found = self._find_role(role, view_name)
            if found is not None:
                return found
        return None

    def _birth_role(
        self,
        txn: _Transaction,
        base_instance: Instance,
        view_name: str,
        event: str,
        args: Tuple[Value, ...],
    ) -> None:
        existing = self.find(view_name, base_instance.key)
        if existing is not None and existing.alive:
            # The role already exists; the phase-entry event is not a
            # second birth (permissions on the base event govern this).
            return
        if existing is not None and existing.dead:
            raise LifecycleError(
                f"{view_name} role of {base_instance.key!r} already ended; "
                "phases are not re-entered with the same role instance"
            )
        compiled = self.compiled_class(view_name)
        # The role's base is its *view-of parent* aspect of the same
        # identity, which may itself be a role (multi-level chains).
        parent = base_instance
        if compiled.base is not None and compiled.base != base_instance.class_name:
            parent = self.find(compiled.base, base_instance.key)
            if parent is None or not parent.alive:
                raise LifecycleError(
                    f"cannot enter the {view_name} phase of "
                    f"{base_instance.key!r}: the required {compiled.base} "
                    "aspect does not exist"
                )
        identity = make_identity(view_name, base_instance.key)
        role = Instance(compiled, identity, self, base=parent)
        self.instances.setdefault(view_name, {})[role.key] = role
        self._bump_population(view_name)
        parent.roles[view_name] = role
        # A new role aspect joined the parent's role set (rolled back via
        # _unregister's bump if the unit aborts).
        parent.epoch += 1
        txn.created.append(role)
        txn.touch(role)
        self._check_permissions(role, event, args)
        role.born = True
        self._apply_initial_values(role)
        self._check_initial_constraints(role)
        for attribute, attr_args, value in self._plan_valuation(role, event, args):
            role.set_attribute(attribute, value, attr_args)
        txn.record(
            role,
            TraceStep(event=event, args=args, state=tuple(role.merged_state().items())),
            "birth",
        )

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_lifecycle(self, instance: Instance, decl: ast.EventDecl) -> None:
        name = f"{instance.class_name}({instance.key!r})"
        if decl.kind == "birth":
            if instance.born:
                raise LifecycleError(f"{name}: second birth event {decl.name!r}")
            return
        if not instance.born:
            raise LifecycleError(
                f"{name}: event {decl.name!r} before birth"
            )
        if instance.dead:
            raise LifecycleError(
                f"{name}: event {decl.name!r} after death"
            )

    def _check_protocol(self, instance: Instance, decl: ast.EventDecl, event: str):
        """Advance the behaviour-pattern automaton; deny occurrences
        that violate the declared protocol.  Returns the successor state
        set (to apply after snapshotting), or None when unconstrained."""
        automaton = instance.compiled.protocol
        if automaton is None:
            return None
        states = instance.protocol_states
        constrained = event in automaton.alphabet
        if constrained:
            states = automaton.advance(states, event)
            if not states:
                if self.obs is not None and self.obs.enabled:
                    self.obs.on_permission_denied(
                        instance.class_name, event, "behaviour_pattern"
                    )
                raise PermissionDenied(
                    f"{instance.class_name}({instance.key!r}).{event}: "
                    "occurrence violates the declared behaviour pattern"
                )
        if decl.kind == "death" and not automaton.is_accepting(states):
            if self.obs is not None and self.obs.enabled:
                self.obs.on_permission_denied(
                    instance.class_name, event, "behaviour_pattern"
                )
            raise PermissionDenied(
                f"{instance.class_name}({instance.key!r}).{event}: "
                "behaviour pattern incomplete at death"
            )
        return states if constrained else None

    def _check_permissions(
        self, instance: Instance, event: str, args: Tuple[Value, ...]
    ) -> None:
        deps = self._probe_deps
        if deps is not None:
            # Monitor summaries advance with the checked aspect's trace;
            # role aspects checked here are not otherwise processed.
            deps.note_instance(instance)
        rules = instance.compiled.permissions_by_event.get(event, ())
        prof = self.prof
        for index, rule in enumerate(rules):
            bindings = self._match_event_args(rule.event.args, args, instance, rule.variables)
            if bindings is None:
                continue
            env = instance.environment(bindings)
            if prof is not None:
                prof.begin(
                    prof.rule_name(
                        "permission", instance.class_name, event, index
                    )
                )
            if self.permission_mode == "incremental":
                monitor = self._monitor_for(instance, rule)
                admitted = monitor.check(env)
            else:
                admitted = evaluate_formula_now(
                    rule.formula,
                    instance.trace,
                    env,
                    term_eval=self._class_term_eval(instance.compiled),
                )
            if prof is not None:
                prof.end()
            if not admitted:
                if self.obs is not None and self.obs.enabled:
                    self.obs.on_permission_denied(
                        instance.class_name, event, str(rule.formula)
                    )
                raise PermissionDenied(
                    f"{instance.class_name}({instance.key!r}).{event}: "
                    f"permission {{ {rule.formula} }} does not hold",
                    rule.position,
                )

    def _monitor_for(self, instance: Instance, rule: ast.PermissionRule) -> FormulaMonitor:
        monitor = instance.monitors.get(id(rule))
        if monitor is None:
            monitor = self._create_monitor(instance, rule)
        return monitor

    def _create_monitor(self, instance: Instance, rule: ast.PermissionRule) -> FormulaMonitor:
        """Build a rule's incremental monitor and bring it up to date by
        replaying the instance's committed trace (exactly the restore
        replay, and equivalent to having updated it at every commit --
        monitors always exist by first commit in the all-resident
        runtime).  Instances faulted in from storage therefore rebuild
        their monitors lazily on first permission check, never at fault
        time, so faulting evaluates no formulas."""
        monitor = FormulaMonitor(
            rule.formula,
            instance.compiled.var_sorts_for(rule),
            hooks=self.obs,
            term_eval=self._class_term_eval(instance.compiled),
        )
        instance.monitors[id(rule)] = monitor
        if instance.trace:
            env = instance.environment()
            for step in instance.trace:
                monitor.update(step, env)
        return monitor

    def _update_monitors(self, instance: Instance, step: TraceStep) -> None:
        monitors = instance.monitors
        env: Optional[Environment] = None
        for rule_list in instance.compiled.permissions_by_event.values():
            for rule in rule_list:
                monitor = monitors.get(id(rule))
                if monitor is None:
                    # creation replays the whole trace -- the committed
                    # ``step`` included (record_step ran first), so an
                    # explicit update here would double-apply it
                    self._create_monitor(instance, rule)
                    continue
                if env is None:
                    env = instance.environment()
                monitor.update(step, env)

    def _check_static_constraints(self, txn: _Transaction) -> None:
        if not self.check_constraints:
            return
        seen: Set[int] = set()
        for instance in txn.touched_instances():
            for target in itertools.chain([instance], self._all_roles(instance)):
                if id(target) in seen or not target.alive:
                    continue
                seen.add(id(target))
                self._check_instance_constraints(
                    target,
                    target.compiled.static_constraints,
                    occurrence=OccurrenceRef(target.class_name, None, target.key),
                )

    def _apply_initial_values(self, instance: Instance) -> None:
        """Apply ``initially`` attribute defaults at birth (valuation
        rules for the birth event may overwrite them)."""
        env = instance.environment()
        for attr in instance.compiled.info.attributes.values():
            if attr.initial is None or attr.derived:
                continue
            # Inherited attributes live on the base aspect; a role birth
            # must not reset them.
            if instance._storage_owner(attr.name) is not instance:
                continue
            instance.set_attribute(
                attr.name, self.eval_term(attr.initial, env, instance.compiled)
            )

    def _check_initial_constraints(self, instance: Instance) -> None:
        if self.check_constraints:
            self._check_instance_constraints(instance, instance.compiled.initial_constraints)

    def _check_instance_constraints(
        self,
        instance: Instance,
        constraints: Sequence[ast.ConstraintDecl],
        occurrence: Optional[OccurrenceRef] = None,
    ) -> None:
        deps = self._probe_deps
        if deps is not None:
            deps.note_instance(instance)
        prof = self.prof
        for index, constraint in enumerate(constraints):
            env = instance.environment()
            if prof is not None:
                prof.begin(
                    prof.indexed_name("constraint", instance.class_name, index)
                )
            try:
                holds = bool(
                    self.eval_term(constraint.formula, env, instance.compiled)
                )
            except EvaluationError as exc:
                if self.obs is not None and self.obs.enabled:
                    self.obs.on_constraint_violation(instance.class_name)
                raise ConstraintViolation(
                    f"{instance.class_name}({instance.key!r}): constraint "
                    f"{constraint.formula} cannot be evaluated: {exc.message}",
                    constraint.position,
                    occurrence=occurrence,
                )
            if prof is not None:
                prof.end()
            if not holds:
                if self.obs is not None and self.obs.enabled:
                    self.obs.on_constraint_violation(instance.class_name)
                raise ConstraintViolation(
                    f"{instance.class_name}({instance.key!r}): constraint "
                    f"{constraint.formula} violated",
                    constraint.position,
                    occurrence=occurrence,
                )

    # ------------------------------------------------------------------
    # Valuation
    # ------------------------------------------------------------------

    def _plan_valuation(
        self, instance: Instance, event: str, args: Tuple[Value, ...]
    ) -> List[Tuple[str, Tuple[Value, ...], Value]]:
        assignments: List[Tuple[str, Tuple[Value, ...], Value]] = []
        prof = self.prof
        for rule in instance.compiled.valuation_by_event.get(event, ()):
            bindings = self._match_event_args(
                rule.event.args, args, instance, rule.variables
            )
            if bindings is None:
                continue
            env = instance.environment(bindings)
            owner = instance.compiled
            if prof is not None:
                prof.begin(
                    prof.node_name(
                        "valuation", instance.class_name, rule.attribute
                    )
                )
            if rule.guard is not None:
                try:
                    if not bool(self.eval_term(rule.guard, env, owner)):
                        if prof is not None:
                            prof.end()
                        continue
                except EvaluationError:
                    if prof is not None:
                        prof.end()
                    continue
            attr_args = tuple(
                self.eval_term(a, env, owner) for a in rule.attribute_args
            )
            value = self.eval_term(rule.expr, env, owner)
            if prof is not None:
                prof.end()
            assignments.append((rule.attribute, attr_args, value))
        return assignments

    def _match_event_args(
        self,
        patterns: Tuple[Term, ...],
        args: Tuple[Value, ...],
        instance: Instance,
        rule_variables: Tuple[ast.VariableDecl, ...],
    ) -> Optional[Dict[str, Value]]:
        """Unify a rule's event-argument patterns with actual values.

        A ``Var`` that is a declared rule variable (or fresh name) binds;
        any other term is evaluated and compared.  Returns the bindings,
        or None when the rule does not apply to this occurrence.
        """
        if len(patterns) != len(args):
            return None
        var_names = {v.name for v in rule_variables}
        bindings: Dict[str, Value] = {}
        for pattern, actual in zip(patterns, args):
            if isinstance(pattern, Var) and (
                pattern.name in var_names or not instance.has_attribute(pattern.name)
            ):
                bound = bindings.get(pattern.name)
                if bound is None:
                    bindings[pattern.name] = actual
                elif bound != actual:
                    return None
                continue
            try:
                expected = self.eval_term(
                    pattern, instance.environment(bindings), instance.compiled
                )
            except EvaluationError:
                return None
            if expected != actual:
                return None
        return bindings

    # ------------------------------------------------------------------
    # Event calling
    # ------------------------------------------------------------------

    def _fire_calling_rule(
        self,
        txn: _Transaction,
        instance: Instance,
        rule: ast.CallingRule,
        args: Tuple[Value, ...],
    ) -> None:
        bindings = self._match_event_args(
            rule.trigger.args, args, instance, rule.variables
        )
        if bindings is None:
            return
        env = instance.environment(bindings)
        if rule.guard is not None:
            try:
                if not bool(self.eval_term(rule.guard, env, instance.compiled)):
                    return
            except EvaluationError:
                return
        for target in rule.targets:
            self._dispatch_call(txn, instance, target, env)

    def _fire_global_rule(
        self,
        txn: _Transaction,
        instance: Instance,
        rule: ast.CallingRule,
        args: Tuple[Value, ...],
    ) -> None:
        bindings: Dict[str, Value] = {}
        trigger = rule.trigger
        if trigger.qualifier is not None and isinstance(trigger.qualifier.key, Var):
            bindings[trigger.qualifier.key.name] = instance.identity
        for pattern, actual in zip(trigger.args, args):
            # In a global rule every Var is a binder (there is no local
            # attribute scope to shadow it).
            if isinstance(pattern, Var):
                bound = bindings.get(pattern.name)
                if bound is None:
                    bindings[pattern.name] = actual
                elif bound != actual:
                    return
            else:
                try:
                    expected = self.eval_term(pattern, MapEnvironment(bindings))
                except EvaluationError:
                    return
                if expected != actual:
                    return
        env = instance.environment(bindings)
        if rule.guard is not None:
            try:
                # Global interaction rules belong to no class; their
                # compiled bodies live in the module-global cache.
                if not bool(self.eval_term(rule.guard, env)):
                    return
            except EvaluationError:
                return
        for target in rule.targets:
            self._dispatch_call(txn, instance, target, env)

    def _dispatch_call(
        self, txn: _Transaction, instance: Instance, target: ast.EventRef, env: Environment
    ) -> None:
        """Resolve one call target and process the called event on every
        resolved instance.  The distributed runtime overrides this seam:
        targets owned by another shard are captured as remote calls
        instead of being processed locally."""
        for target_instance in self._resolve_targets(instance, target, env):
            target_args = tuple(self.eval_term(a, env) for a in target.args)
            self._process(txn, target_instance, target.name, target_args)

    def _resolve_targets(
        self, instance: Instance, target: ast.EventRef, env: Environment
    ) -> List[Instance]:
        qualifier = target.qualifier
        if qualifier is None or qualifier.name == "self":
            return [instance]
        info = instance.compiled.info
        # Component slot: broadcast to the member(s).
        if qualifier.name in info.components:
            value = instance.observe(qualifier.name)
            members: Iterable[Value]
            if isinstance(value.sort, IdSort):
                members = [value]
            else:
                members = list(value.payload)
            resolved = []
            for member in members:
                found = self.resolve_instance(member)
                if found is None:
                    raise RuntimeSpecError(
                        f"component {qualifier.name!r} of "
                        f"{instance.class_name}({instance.key!r}) references "
                        f"missing instance {member}"
                    )
                resolved.append(found)
            return resolved
        # Incorporated base object alias.
        alias_base = self._alias_base(instance, qualifier.name)
        if alias_base is not None:
            return [self.single_object(alias_base)]
        # Class-qualified: CLASS(key).event
        if qualifier.name in self.compiled.classes:
            if qualifier.key is None:
                raise RuntimeSpecError(
                    f"class-qualified call {qualifier.name}.{target.name} "
                    "needs an identity"
                )
            key_value = self.eval_term(qualifier.key, env)
            found = self.find(qualifier.name, key_value)
            if found is None:
                raise RuntimeSpecError(
                    f"no {qualifier.name} instance with identity "
                    f"{key_value.payload!r} for call to {target.name!r}"
                )
            return [found]
        raise RuntimeSpecError(
            f"cannot resolve call qualifier {qualifier.name!r} in "
            f"{instance.class_name}"
        )

    def _alias_base(self, instance: Instance, alias: str) -> Optional[str]:
        current: Optional[Instance] = instance
        while current is not None:
            base_name = current.compiled.info.inheriting.get(alias)
            if base_name is not None:
                return base_name
            current = current.base
        return None

    # ------------------------------------------------------------------
    # Sequenced occurrence (one atomic unit)
    # ------------------------------------------------------------------

    def occur_sequence(
        self,
        pairs: Sequence[Tuple[Instance, str, Sequence[object]]],
    ) -> None:
        """Drive several occurrences as *one* atomic unit (the runtime
        face of transaction calling, used by derived interface events
        whose calling rule lists a target sequence)."""
        items = [
            (instance, event, self._coerce_args(args))
            for instance, event, args in pairs
        ]
        if self.txn_compile and items:
            # Homogeneous-batch fast path: one compiled closure reused
            # across the whole sequence instead of re-resolving rules
            # per occurrence.  Quiet-only -- instrumented batches keep
            # the generic pipeline's per-occurrence span structure.
            first_instance, first_event, _ = items[0]
            homogeneous = (
                (self.obs is None or not self.obs.enabled)
                and self.prof is None
                and all(
                    instance.compiled is first_instance.compiled
                    and event == first_event
                    for instance, event, _args in items
                )
            )
            if homogeneous:
                plan, fresh = _lookup_txn_plan(
                    first_instance.compiled, first_event, self.compiled
                )
                if plan is not None and all(
                    plan.eligible(self, instance) for instance, _e, _a in items
                ):
                    _TXN_STATS.cache_hits += (
                        len(items) - 1 if fresh else len(items)
                    )
                    plan.run_batch_quiet(self, items)
                    return
            _TXN_STATS.fallbacks += len(items)
        self._run_unit(items)

    def sequence_permitted(
        self, pairs: Sequence[Tuple[Instance, str, Sequence[object]]]
    ) -> bool:
        """Would :meth:`occur_sequence` over ``pairs`` be admitted?  A
        dry transaction that always rolls back."""
        self._in_unit += 1
        txn = _Transaction(self)
        try:
            for instance, event, args in pairs:
                self._process(txn, instance, event, self._coerce_args(args))
            self._check_static_constraints(txn)
            return True
        except RuntimeSpecError:
            return False
        finally:
            txn.rollback()
            self._in_unit -= 1
            self._balance_store()
