"""The shared system clock: the paper's canonical *active* object.

Section 6.1 names "a shared system clock or calendar, where we have both
read access to the current time or date as well as an active triggering
mechanism for time-dependent system activities" as a typical shared
module.  :data:`CLOCK_SPEC` is that object: ``tick`` is an *active*
event, so the scheduler (:meth:`~repro.runtime.objectbase.ObjectBase.step`)
fires it on the clock's own initiative; ``Now`` counts ticks.

The permission ``{ Now < Horizon } tick;`` bounds the clock's activity,
so ``run_active`` reaches quiescence -- an unbounded active event would
otherwise fire forever.
"""

from repro.runtime.objectbase import ObjectBase

CLOCK_SPEC = """
object SystemClock
  template
    attributes
      Now: nat;
      Horizon: nat;
    events
      birth start(nat);
      active tick;
      set_horizon(nat);
      death halt;
    valuation
      variables h: nat;
      start(h) Now = 0;
      start(h) Horizon = h;
      tick Now = Now + 1;
      set_horizon(h) Horizon = h;
    permissions
      { Now < Horizon } tick;
end object SystemClock;
"""


def start_clock(system: ObjectBase, horizon: int = 10):
    """Create the clock inside ``system`` (whose specification must
    include :data:`CLOCK_SPEC`'s text) with the given tick budget."""
    return system.create("SystemClock", None, "start", [horizon])
