"""Bounded state-space exploration: from a running object to its LTS.

Section 3 models templates as *processes*; :mod:`repro.core.behavior`
makes processes concrete as labelled transition systems.  This module
closes the loop: it derives the LTS an instance actually exhibits under
the full animator semantics (permissions, protocols, constraints,
calling), by bounded exploration over a supplied event/argument
vocabulary.

With the LTS in hand, the paper's behaviour-containment claims become
machine-checkable *from specifications* -- e.g. Example 3.4's "a
computer is bound to the protocol of switching on before being able to
switch off" is verified by simulating the derived COMPUTER LTS against
the derived EL_DEVICE LTS (see ``tests/test_explore.py``).

Implementation: breadth-first search over system snapshots
(:mod:`repro.runtime.persistence`), so exploration never mutates the
caller's object base.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.behavior import LTS
from repro.diagnostics import RuntimeSpecError, TrollError
from repro.runtime.objectbase import ObjectBase
from repro.runtime.instance import Instance
from repro.runtime.persistence import dump_json, restore_json, value_to_json
import json


def _state_key(instance: Instance) -> str:
    """A stable digest of the instance's observable configuration."""
    payload = {
        "born": instance.born,
        "dead": instance.dead,
        "state": sorted(
            (name, json.dumps(value_to_json(value), sort_keys=True))
            for name, value in instance.merged_state().items()
        ),
        "protocol": sorted(instance.protocol_states)
        if instance.protocol_states is not None
        else None,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:12]
    return f"s_{digest}"


def explore_lts(
    system: ObjectBase,
    instance: Instance,
    candidates: Dict[str, List[Sequence[object]]],
    max_states: int = 200,
    label_args: bool = False,
) -> LTS:
    """Derive the LTS of ``instance`` under the animator semantics.

    ``candidates`` supplies the exploration vocabulary: event name ->
    list of argument tuples (parameterless events may map to ``[()]`` or
    be listed with an empty list of one empty tuple).  Exploration stops
    at ``max_states`` distinct configurations (raising if exceeded, so a
    truncated LTS is never silently returned).

    The caller's system is left untouched (exploration works on
    snapshots).
    """
    spec_source = system.compiled
    root_blob = dump_json(system)
    root_system = restore_json(ObjectBase(spec_source), root_blob)
    root_instance = root_system.instance(instance.class_name, instance.key)

    initial_key = _state_key(root_instance)
    lts = LTS(initial=initial_key)
    frontier: List[Tuple[str, str]] = [(initial_key, root_blob)]
    seen: Dict[str, str] = {initial_key: root_blob}

    while frontier:
        state_key, blob = frontier.pop(0)
        for event, arg_lists in sorted(candidates.items()):
            for args in arg_lists or [()]:
                probe_system = restore_json(ObjectBase(spec_source), blob)
                probe = probe_system.instance(instance.class_name, instance.key)
                try:
                    probe_system.occur(probe, event, args)
                except TrollError:
                    continue
                successor_key = _state_key(probe)
                label = event
                if label_args and args:
                    rendered = ", ".join(str(a) for a in args)
                    label = f"{event}({rendered})"
                lts.add_transition(state_key, label, successor_key)
                if successor_key not in seen:
                    if len(seen) >= max_states:
                        raise RuntimeSpecError(
                            f"exploration exceeded {max_states} states; "
                            "narrow the candidate vocabulary or raise the bound"
                        )
                    successor_blob = dump_json(probe_system)
                    seen[successor_key] = successor_blob
                    frontier.append((successor_key, successor_blob))
    return lts


def class_lts(
    specification: str,
    class_name: str,
    identification: Optional[dict],
    birth_args: Sequence[object],
    candidates: Dict[str, List[Sequence[object]]],
    birth_event: Optional[str] = None,
    setup=None,
    max_states: int = 200,
) -> LTS:
    """Derive the LTS of a freshly created instance of ``class_name``.

    ``setup`` (optional) receives the new object base before the
    instance is created -- use it to create required collaborators
    (e.g. the shared ``emp_rel``).
    """
    system = ObjectBase(specification)
    if setup is not None:
        setup(system)
    instance = system.create(class_name, identification, birth_event, birth_args)
    return explore_lts(system, instance, candidates, max_states=max_states)
