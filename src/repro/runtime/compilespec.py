"""Compilation of checked specifications into runtime form.

The checker's symbol tables are declaration-oriented; the animator wants
occurrence-oriented indexes: "which valuation rules fire for event e?",
"which permissions guard e?", "which calling rules does e trigger?",
"which view classes are born/killed by e?".  :func:`compile_specification`
builds those indexes once, so each occurrence is a few dictionary hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datatypes.sorts import Sort
from repro.lang import ast
from repro.lang.checker import CheckedSpecification, ClassInfo


@dataclass
class CompiledClass:
    """One class (or single object), indexed for the animator."""

    info: ClassInfo
    #: event name -> valuation rules triggered by it
    valuation_by_event: Dict[str, List[ast.ValuationRule]] = field(default_factory=dict)
    #: event name -> permission rules guarding it
    permissions_by_event: Dict[str, List[ast.PermissionRule]] = field(default_factory=dict)
    #: event name -> calling rules it triggers (local interaction section)
    callings_by_event: Dict[str, List[ast.CallingRule]] = field(default_factory=dict)
    #: derived attribute name -> derivation rule
    derivation_by_attribute: Dict[str, ast.DerivationRule] = field(default_factory=dict)
    #: static constraints
    static_constraints: List[ast.ConstraintDecl] = field(default_factory=list)
    #: constraints that must hold at birth only
    initial_constraints: List[ast.ConstraintDecl] = field(default_factory=list)
    #: view classes born by one of this class's events:
    #: event name -> [view class name]
    role_births_by_event: Dict[str, List[str]] = field(default_factory=dict)
    #: view classes killed by one of this class's events
    role_deaths_by_event: Dict[str, List[str]] = field(default_factory=dict)
    #: events that must occur before death (liveness obligations)
    obligations: List[str] = field(default_factory=list)
    #: compiled behaviour-pattern automaton, if the class declares one
    protocol: Optional[object] = None
    #: per-rule variable sorts (permission monitors need them)
    _var_sorts_cache: Dict[int, Dict[str, Sort]] = field(default_factory=dict)
    #: compiled rule bodies (valuation/permission/derivation/constraint
    #: terms lowered to closures), keyed by id(term) with the term kept
    #: for identity checking -- see repro.datatypes.compile.evaluate_term.
    #: Owned here so a class's rules survive global-cache overflow and
    #: die with the specification.
    term_cache: Dict[int, tuple] = field(default_factory=dict)
    #: fused whole-transaction plans (repro.runtime.txncompile), keyed
    #: by event name; entries are TxnPlan objects or decline-reason
    #: strings.  Plans are system-independent, so systems sharing one
    #: compiled specification share them; set_txn_compile clears this.
    txn_cache: Dict[str, object] = field(default_factory=dict)
    #: merged event index (declared + implicit), cached at compile time
    _events_index: Optional[Dict[str, ast.EventDecl]] = None
    _active_events: Optional[List[ast.EventDecl]] = None

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def is_single_object(self) -> bool:
        return self.info.kind == "object"

    @property
    def base(self) -> Optional[str]:
        return self.info.base

    def event(self, name: str) -> Optional[ast.EventDecl]:
        if self._events_index is None:
            self._events_index = self.info.all_events()
        return self._events_index.get(name)

    def active_events(self) -> List[ast.EventDecl]:
        if self._active_events is None:
            self._active_events = [
                e for e in self.info.all_events().values() if e.active
            ]
        return self._active_events

    def var_sorts_for(self, rule: ast.PermissionRule) -> Dict[str, Sort]:
        """Sorts of a permission rule's variables and event binders."""
        key = id(rule)
        cached = self._var_sorts_cache.get(key)
        if cached is not None:
            return cached
        sorts: Dict[str, Sort] = {v.name: v.sort for v in rule.variables}
        decl = self.event(rule.event.name)
        if decl is not None:
            from repro.datatypes.terms import Var

            for index, arg in enumerate(rule.event.args):
                if isinstance(arg, Var) and index < len(decl.param_sorts):
                    sorts.setdefault(arg.name, decl.param_sorts[index])
        self._var_sorts_cache[key] = sorts
        return sorts


@dataclass
class CompiledSpecification:
    """All compiled classes plus the global interaction index."""

    checked: CheckedSpecification
    classes: Dict[str, CompiledClass] = field(default_factory=dict)
    #: (class name, event name) -> global calling rules triggered
    global_callings: Dict[Tuple[str, str], List[ast.CallingRule]] = field(
        default_factory=dict
    )

    def compiled(self, class_name: str) -> CompiledClass:
        return self.classes[class_name]


def compile_specification(checked: CheckedSpecification) -> CompiledSpecification:
    """Index a checked specification for animation."""
    out = CompiledSpecification(checked=checked)
    for name, info in checked.classes.items():
        out.classes[name] = _compile_class(info)

    # Role birth/death bindings: a view class whose birth event is bound
    # to a base event means "the base event brings the role into being".
    for name, info in checked.classes.items():
        if info.base is None:
            continue
        own_template = info.template
        for event in own_template.events:
            if event.binding is None:
                continue
            bound_class = event.binding.object_name
            target = out.classes.get(bound_class)
            if target is None:
                continue
            if event.kind == "birth":
                target.role_births_by_event.setdefault(
                    event.binding.event_name, []
                ).append(name)
            elif event.kind == "death":
                target.role_deaths_by_event.setdefault(
                    event.binding.event_name, []
                ).append(name)

    for block in checked.spec.global_interactions:
        for rule in block.rules:
            trigger = rule.trigger
            if trigger.qualifier is None:
                continue
            key = (trigger.qualifier.name, trigger.name)
            out.global_callings.setdefault(key, []).append(rule)
    return out


def _compile_class(info: ClassInfo) -> CompiledClass:
    compiled = CompiledClass(info=info)
    template = info.template
    # A view class animates its base's rules too (its valuation includes
    # the inherited rules on the shared state) -- the runtime reads the
    # base chain at occurrence time instead, so only own rules here.
    for rule in template.valuation:
        compiled.valuation_by_event.setdefault(rule.event.name, []).append(rule)
    for rule in template.permissions:
        compiled.permissions_by_event.setdefault(rule.event.name, []).append(rule)
    for rule in template.interactions:
        compiled.callings_by_event.setdefault(rule.trigger.name, []).append(rule)
    for rule in template.derivation_rules:
        compiled.derivation_by_attribute[rule.attribute] = rule
    for constraint in template.constraints:
        if constraint.kind == "initially":
            compiled.initial_constraints.append(constraint)
        else:
            compiled.static_constraints.append(constraint)
    if template.behavior_patterns:
        from repro.lang.patterns import compile_pattern

        compiled.protocol = compile_pattern(template.behavior_patterns)
    # Obligations strengthen every death event's permission by
    # sometime(after(e)) with any arguments.
    if template.obligations:
        from repro.lang.ast import PermissionRule, EventRef
        from repro.temporal.formulas import After, EventPattern, Sometime

        compiled.obligations = [o.event for o in template.obligations]
        for death in info.death_events():
            for obligation in template.obligations:
                rule = PermissionRule(
                    position=obligation.position,
                    variables=(),
                    formula=Sometime(
                        body=After(
                            pattern=EventPattern(
                                event=obligation.event, match_any_args=True
                            )
                        )
                    ),
                    event=EventRef(name=death.name),
                )
                compiled.permissions_by_event.setdefault(death.name, []).append(rule)
    return compiled
