"""Value-based query combinators.

All combinators consume and produce :class:`~repro.datatypes.values.Value`
collections (sets or lists of tuples), mirroring the paper's query
algebra over values -- "handling values (not objects!)".  Predicates and
key functions are plain Python callables receiving a ``{field: Value}``
dict per tuple, which keeps the functional face free of the term
machinery (derivation rules use the term face instead).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.datatypes.sorts import ListSort, SetSort, TupleSort
from repro.datatypes.values import Value, integer, list_value, set_value, tuple_value
from repro.diagnostics import EvaluationError

Row = Dict[str, Value]
Predicate = Callable[[Row], bool]


def _rows(collection: Value) -> List[Row]:
    if not isinstance(collection.sort, (SetSort, ListSort)):
        raise EvaluationError(
            f"query combinators expect a collection, got sort {collection.sort}"
        )
    rows: List[Row] = []
    for item in collection.payload:
        if isinstance(item.sort, TupleSort):
            rows.append({name: value for name, value in item.payload})
        else:
            rows.append({"it": item})
    return rows


def _rebuild(collection: Value, rows: Iterable[Row]) -> Value:
    items = []
    for row in rows:
        if list(row) == ["it"]:
            items.append(row["it"])
        else:
            items.append(tuple_value(row))
    if isinstance(collection.sort, SetSort):
        return set_value(items)
    return list_value(items)


def select(collection: Value, predicate: Predicate) -> Value:
    """Keep the tuples satisfying ``predicate``."""
    return _rebuild(collection, (r for r in _rows(collection) if predicate(r)))


def project(collection: Value, fields: Sequence[str]) -> Value:
    """Restrict tuples to ``fields``; a single field projects to the bare
    values (the paper's ``project[esalary]`` idiom)."""
    rows = _rows(collection)
    if len(fields) == 1:
        name = fields[0]
        items = []
        for row in rows:
            if name not in row:
                raise EvaluationError(f"project: unknown field {name!r}")
            items.append(row[name])
        if isinstance(collection.sort, SetSort):
            return set_value(items)
        return list_value(items)
    projected = []
    for row in rows:
        missing = [f for f in fields if f not in row]
        if missing:
            raise EvaluationError(f"project: unknown fields {missing}")
        projected.append({f: row[f] for f in fields})
    return _rebuild(collection, projected)


def rename(collection: Value, mapping: Dict[str, str]) -> Value:
    """Rename tuple fields (``{"old": "new"}``)."""
    rows = []
    for row in _rows(collection):
        rows.append({mapping.get(name, name): value for name, value in row.items()})
    return _rebuild(collection, rows)


def count(collection: Value) -> Value:
    """Cardinality, as a value."""
    return integer(len(collection.payload))


def the(collection: Value) -> Value:
    """The unique element of a singleton collection."""
    items = list(collection.payload)
    if len(items) != 1:
        raise EvaluationError(f"the: expected a singleton, got {len(items)} elements")
    return items[0]


def exists(collection: Value, predicate: Optional[Predicate] = None) -> bool:
    """Does any tuple (satisfying ``predicate``) exist?"""
    rows = _rows(collection)
    if predicate is None:
        return bool(rows)
    return any(predicate(r) for r in rows)


def product(left: Value, right: Value) -> Value:
    """Cartesian product of two tuple collections (field collision is an
    error; :func:`rename` first)."""
    left_rows, right_rows = _rows(left), _rows(right)
    out: List[Row] = []
    for l in left_rows:
        for r in right_rows:
            clash = set(l) & set(r)
            if clash:
                raise EvaluationError(
                    f"product: field collision {sorted(clash)}; rename first"
                )
            merged = dict(l)
            merged.update(r)
            out.append(merged)
    return _rebuild(left, out)


def join(left: Value, right: Value, on: Predicate) -> Value:
    """Theta-join: the product filtered by ``on`` (the implicit
    aggregation underlying the paper's join views)."""
    return select(product(left, right), on)


def group_by(collection: Value, key_fields: Sequence[str]) -> Dict[tuple, Value]:
    """Partition a tuple collection by the values of ``key_fields``.

    Returns ``{key tuple: sub-collection}`` preserving the collection
    kind.
    """
    buckets: Dict[tuple, List[Row]] = {}
    for row in _rows(collection):
        missing = [f for f in key_fields if f not in row]
        if missing:
            raise EvaluationError(f"group_by: unknown fields {missing}")
        key = tuple(row[f] for f in key_fields)
        buckets.setdefault(key, []).append(row)
    return {key: _rebuild(collection, rows) for key, rows in buckets.items()}


def aggregate(
    collection: Value, field: str, fn: Callable[[List[Value]], Value]
) -> Value:
    """Apply ``fn`` to the list of ``field`` values."""
    values = []
    for row in _rows(collection):
        if field not in row:
            raise EvaluationError(f"aggregate: unknown field {field!r}")
        values.append(row[field])
    return fn(values)
