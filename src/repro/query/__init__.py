"""The object query algebra (Section 5.1, [SJ90/SJS91]).

"For the derivation of attribute values we may use an object query
language enabling value retrieval from object states ...  This algebra
resembles well known concepts of database query algebras handling values
(not objects!).  Algebra terms are evaluated locally to the encapsulated
object."

Two faces:

* the *term* face -- ``select[...](...)`` / ``project[...](...)`` terms
  inside TROLL derivation rules, parsed by :mod:`repro.lang` and
  evaluated by :mod:`repro.datatypes.evaluator`;
* the *functional* face in this package -- plain Python combinators over
  :class:`~repro.datatypes.values.Value` collections, for host programs
  and tests.
"""

from repro.query.algebra import (
    aggregate,
    count,
    exists,
    group_by,
    join,
    product,
    project,
    rename,
    select,
    the,
)

__all__ = [
    "aggregate",
    "count",
    "exists",
    "group_by",
    "join",
    "product",
    "project",
    "rename",
    "select",
    "the",
]
