"""Built-in data-type operations.

The paper's listings apply operations such as ``insert``, ``remove``,
``delete`` and ``in`` to set-valued attributes, arithmetic and comparison
operators in derivation rules and constraints, and aggregate operations
(``count``) in query terms.  This module is the single registry of those
operations: each :class:`Operation` bundles a sort-inference function
(used by the static checker) with an implementation (used by the
evaluator).

A quirk of the paper's concrete syntax is that collection operations are
written with either argument order -- ``insert(P, employees)`` in the
DEPT listing but ``insert(Emps, tuple(n, b, s))`` in the ``emp_rel``
listing.  The registry therefore normalises the argument order of the
polymorphic collection operations: whichever argument is the collection
is treated as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.diagnostics import EvaluationError, SortError
from repro.datatypes.sorts import (
    ANY,
    BOOL,
    DATE,
    INTEGER,
    ListSort,
    MONEY,
    MapSort,
    NAT,
    REAL,
    SetSort,
    Sort,
    is_numeric,
)
from repro.datatypes.values import (
    Value,
    boolean,
    date,
    integer,
    list_value,
    map_value,
    real,
    set_value,
    string,
)


@dataclass(frozen=True)
class Operation:
    """A built-in operation: name, arity, sort inference, implementation."""

    name: str
    arity: int
    infer: Callable[[Sequence[Sort]], Sort]
    apply: Callable[[Sequence[Value]], Value]
    doc: str = ""


def _is_collection(v: Value) -> bool:
    return isinstance(v.sort, (SetSort, ListSort))


def _collection_first(args: Sequence[Value], op: str) -> tuple:
    """Normalise a (collection, element) pair regardless of given order."""
    if len(args) != 2:
        raise EvaluationError(f"{op} expects 2 arguments, got {len(args)}")
    a, b = args
    if _is_collection(a):
        return a, b
    if _is_collection(b):
        return b, a
    raise EvaluationError(f"{op} expects a set or list argument")


def _numeric_result(sorts: Sequence[Sort]) -> Sort:
    for s in sorts:
        if not (is_numeric(s) or s is ANY or s.name == "any"):
            raise SortError(f"expected a numeric sort, got {s}")
    # money sits between integer and real in the promotion order.
    order = {"nat": 0, "integer": 1, "money": 2, "real": 3, "any": 0}
    best = max((order.get(s.name, 0) for s in sorts), default=1)
    return (NAT, INTEGER, MONEY, REAL)[best]


def _num(v: Value, op: str):
    if not is_numeric(v.sort):
        raise EvaluationError(f"{op} expects numeric arguments, got sort {v.sort}")
    return v.payload


def _wrap_numeric(result, sorts: Sequence[Sort]) -> Value:
    sort = _numeric_result(sorts)
    if sort in (NAT, INTEGER) and isinstance(result, float) and result.is_integer():
        result = int(result)
    if isinstance(result, float) and sort in (NAT, INTEGER):
        sort = REAL
    return Value(sort, result)


def _arith(name: str, fn: Callable) -> Operation:
    def apply(args: Sequence[Value]) -> Value:
        x, y = (_num(a, name) for a in args)
        try:
            result = fn(x, y)
        except ZeroDivisionError:
            raise EvaluationError(f"division by zero in {name}")
        return _wrap_numeric(result, [a.sort for a in args])

    def infer(sorts: Sequence[Sort]) -> Sort:
        return _numeric_result(sorts)

    return Operation(name, 2, infer, apply, doc=f"numeric {name}")


def _compare(name: str, fn: Callable) -> Operation:
    def apply(args: Sequence[Value]) -> Value:
        a, b = args
        if is_numeric(a.sort) and is_numeric(b.sort):
            return boolean(fn(a.payload, b.payload))
        if a.sort != b.sort and not a.sort.is_compatible_with(b.sort):
            raise EvaluationError(
                f"cannot compare values of sorts {a.sort} and {b.sort}"
            )
        return boolean(fn(a.payload, b.payload))

    return Operation(name, 2, lambda s: BOOL, apply, doc=f"comparison {name}")


def _infer_elem(sort: Sort) -> Sort:
    if isinstance(sort, (SetSort, ListSort)):
        return sort.element
    return ANY


def _op_insert(args: Sequence[Value]) -> Value:
    coll, elem = _collection_first(args, "insert")
    if isinstance(coll.sort, SetSort):
        return set_value(set(coll.payload) | {elem}, _join_elem(coll.sort.element, elem.sort))
    return list_value(tuple(coll.payload) + (elem,), _join_elem(coll.sort.element, elem.sort))


def _join_elem(current: Sort, incoming: Sort) -> Sort:
    return incoming if current is ANY or current.name == "any" else current


def _op_remove(args: Sequence[Value]) -> Value:
    coll, elem = _collection_first(args, "remove")
    if isinstance(coll.sort, SetSort):
        return set_value(set(coll.payload) - {elem}, coll.sort.element)
    return list_value((v for v in coll.payload if v != elem), coll.sort.element)


def _op_in(args: Sequence[Value]) -> Value:
    coll, elem = _collection_first(args, "in")
    return boolean(elem in coll.payload)


def _op_count(args: Sequence[Value]) -> Value:
    (coll,) = args
    if not _is_collection(coll) and not isinstance(coll.sort, MapSort):
        raise EvaluationError(f"count expects a collection, got sort {coll.sort}")
    return Value(NAT, len(coll.payload))


def _op_union(args: Sequence[Value]) -> Value:
    a, b = args
    if not (isinstance(a.sort, SetSort) and isinstance(b.sort, SetSort)):
        raise EvaluationError("union expects two sets")
    return set_value(set(a.payload) | set(b.payload), a.sort.element)


def _op_intersection(args: Sequence[Value]) -> Value:
    a, b = args
    if not (isinstance(a.sort, SetSort) and isinstance(b.sort, SetSort)):
        raise EvaluationError("intersection expects two sets")
    return set_value(set(a.payload) & set(b.payload), a.sort.element)


def _op_difference(args: Sequence[Value]) -> Value:
    a, b = args
    if not (isinstance(a.sort, SetSort) and isinstance(b.sort, SetSort)):
        raise EvaluationError("difference expects two sets")
    return set_value(set(a.payload) - set(b.payload), a.sort.element)


def _op_subset(args: Sequence[Value]) -> Value:
    a, b = args
    if not (isinstance(a.sort, SetSort) and isinstance(b.sort, SetSort)):
        raise EvaluationError("subset expects two sets")
    return boolean(set(a.payload) <= set(b.payload))


def _op_isempty(args: Sequence[Value]) -> Value:
    (coll,) = args
    if not _is_collection(coll):
        raise EvaluationError("isempty expects a collection")
    return boolean(len(coll.payload) == 0)


def _op_head(args: Sequence[Value]) -> Value:
    (lst,) = args
    if not isinstance(lst.sort, ListSort):
        raise EvaluationError("head expects a list")
    if not lst.payload:
        raise EvaluationError("head of the empty list")
    return lst.payload[0]


def _op_tail(args: Sequence[Value]) -> Value:
    (lst,) = args
    if not isinstance(lst.sort, ListSort):
        raise EvaluationError("tail expects a list")
    if not lst.payload:
        raise EvaluationError("tail of the empty list")
    return list_value(lst.payload[1:], lst.sort.element)


def _op_last(args: Sequence[Value]) -> Value:
    (lst,) = args
    if not isinstance(lst.sort, ListSort):
        raise EvaluationError("last expects a list")
    if not lst.payload:
        raise EvaluationError("last of the empty list")
    return lst.payload[-1]


def _op_append(args: Sequence[Value]) -> Value:
    coll, elem = _collection_first(args, "append")
    if not isinstance(coll.sort, ListSort):
        raise EvaluationError("append expects a list")
    return list_value(tuple(coll.payload) + (elem,), _join_elem(coll.sort.element, elem.sort))


def _op_concat(args: Sequence[Value]) -> Value:
    a, b = args
    if isinstance(a.sort, ListSort) and isinstance(b.sort, ListSort):
        return list_value(tuple(a.payload) + tuple(b.payload), a.sort.element)
    if a.sort.name == "string" and b.sort.name == "string":
        return string(a.payload + b.payload)
    raise EvaluationError("concat expects two lists or two strings")


def _op_nth(args: Sequence[Value]) -> Value:
    lst, idx = args
    if not isinstance(lst.sort, ListSort):
        raise EvaluationError("nth expects a list")
    i = _num(idx, "nth")
    if not 1 <= i <= len(lst.payload):
        raise EvaluationError(f"nth index {i} out of range 1..{len(lst.payload)}")
    return lst.payload[int(i) - 1]


def _op_length(args: Sequence[Value]) -> Value:
    (v,) = args
    if isinstance(v.sort, ListSort) or v.sort.name == "string":
        return Value(NAT, len(v.payload))
    raise EvaluationError("length expects a list or string")


def _op_get(args: Sequence[Value]) -> Value:
    m, k = args
    if not isinstance(m.sort, MapSort):
        raise EvaluationError("get expects a map")
    for key, val in m.payload:
        if key == k:
            return val
    raise EvaluationError(f"map has no key {k}")


def _op_put(args: Sequence[Value]) -> Value:
    m, k, v = args
    if not isinstance(m.sort, MapSort):
        raise EvaluationError("put expects a map")
    entries = {key: val for key, val in m.payload}
    entries[k] = v
    return map_value(entries, m.sort.key, m.sort.value)


def _op_remove_key(args: Sequence[Value]) -> Value:
    m, k = args
    if not isinstance(m.sort, MapSort):
        raise EvaluationError("remove_key expects a map")
    entries = {key: val for key, val in m.payload if key != k}
    return map_value(entries, m.sort.key, m.sort.value)


def _op_dom(args: Sequence[Value]) -> Value:
    (m,) = args
    if not isinstance(m.sort, MapSort):
        raise EvaluationError("dom expects a map")
    return set_value((k for k, _ in m.payload), m.sort.key)


def _op_has_key(args: Sequence[Value]) -> Value:
    m, k = args
    if not isinstance(m.sort, MapSort):
        raise EvaluationError("has_key expects a map")
    return boolean(any(key == k for key, _ in m.payload))


def _aggregate(name: str, fn: Callable) -> Operation:
    def apply(args: Sequence[Value]) -> Value:
        (coll,) = args
        if not _is_collection(coll):
            raise EvaluationError(f"{name} expects a collection")
        items = list(coll.payload)
        if not items:
            if name == "sum":
                return integer(0)
            raise EvaluationError(f"{name} of an empty collection")
        payloads = [_num(v, name) for v in items]
        result = fn(payloads)
        if isinstance(result, float) and result.is_integer():
            return integer(int(result))
        return real(result) if isinstance(result, float) else integer(result)

    return Operation(name, 1, lambda s: INTEGER, apply, doc=f"aggregate {name}")


def _op_the(args: Sequence[Value]) -> Value:
    """Extract the unique element of a singleton collection."""
    (coll,) = args
    if not _is_collection(coll):
        raise EvaluationError("the expects a collection")
    items = list(coll.payload)
    if len(items) != 1:
        raise EvaluationError(f"the expects a singleton, got {len(items)} elements")
    return items[0]


def _op_elems(args: Sequence[Value]) -> Value:
    """The set of elements of a list."""
    (lst,) = args
    if not isinstance(lst.sort, ListSort):
        raise EvaluationError("elems expects a list")
    return set_value(lst.payload, lst.sort.element)


def _op_mkdate(args: Sequence[Value]) -> Value:
    y, m, d = (_num(a, "date") for a in args)
    return date(int(y), int(m), int(d))


def _op_not(args: Sequence[Value]) -> Value:
    (v,) = args
    return boolean(not bool(v))


def _op_neg(args: Sequence[Value]) -> Value:
    (v,) = args
    n = _num(v, "neg")
    return _wrap_numeric(-n, [v.sort if v.sort != NAT else INTEGER])


def _bool_binop(name: str, fn: Callable) -> Operation:
    def apply(args: Sequence[Value]) -> Value:
        a, b = args
        return boolean(fn(bool(a), bool(b)))

    return Operation(name, 2, lambda s: BOOL, apply, doc=f"boolean {name}")


def _infer_first_elem(sorts: Sequence[Sort]) -> Sort:
    for s in sorts:
        if isinstance(s, (SetSort, ListSort)):
            return s.element
    return ANY


def _infer_first_coll(sorts: Sequence[Sort]) -> Sort:
    for s in sorts:
        if isinstance(s, (SetSort, ListSort)):
            return s
    return ANY


BUILTIN_OPERATIONS: Dict[str, Operation] = {}


def _register(op: Operation) -> None:
    BUILTIN_OPERATIONS[op.name] = op


for _op in (
    _arith("+", lambda a, b: a + b),
    _arith("-", lambda a, b: a - b),
    _arith("*", lambda a, b: a * b),
    _arith("/", lambda a, b: a / b),
    _arith("div", lambda a, b: a // b),
    _arith("mod", lambda a, b: a % b),
    _compare("=", lambda a, b: a == b),
    _compare("<>", lambda a, b: a != b),
    _compare("<", lambda a, b: a < b),
    _compare("<=", lambda a, b: a <= b),
    _compare(">", lambda a, b: a > b),
    _compare(">=", lambda a, b: a >= b),
    Operation("insert", 2, _infer_first_coll, _op_insert, "add an element to a set/list"),
    Operation("remove", 2, _infer_first_coll, _op_remove, "remove an element from a set/list"),
    Operation("delete", 2, _infer_first_coll, _op_remove, "alias of remove (emp_rel listing)"),
    Operation("in", 2, lambda s: BOOL, _op_in, "collection membership"),
    Operation("count", 1, lambda s: NAT, _op_count, "cardinality"),
    Operation("card", 1, lambda s: NAT, _op_count, "alias of count"),
    Operation("union", 2, _infer_first_coll, _op_union, "set union"),
    Operation("intersection", 2, _infer_first_coll, _op_intersection, "set intersection"),
    Operation("difference", 2, _infer_first_coll, _op_difference, "set difference"),
    Operation("subset", 2, lambda s: BOOL, _op_subset, "subset test"),
    Operation("isempty", 1, lambda s: BOOL, _op_isempty, "emptiness test"),
    Operation("head", 1, _infer_first_elem, _op_head, "first list element"),
    Operation("tail", 1, _infer_first_coll, _op_tail, "list without its head"),
    Operation("last", 1, _infer_first_elem, _op_last, "last list element"),
    Operation("append", 2, _infer_first_coll, _op_append, "append an element to a list"),
    Operation("concat", 2, _infer_first_coll, _op_concat, "list/string concatenation"),
    Operation("nth", 2, _infer_first_elem, _op_nth, "1-based list indexing"),
    Operation("length", 1, lambda s: NAT, _op_length, "list/string length"),
    Operation("elems", 1, lambda s: _infer_first_coll(s), _op_elems, "set of list elements"),
    Operation("get", 2, lambda s: ANY, _op_get, "map lookup"),
    Operation("put", 3, _infer_first_coll, _op_put, "map update"),
    Operation("remove_key", 2, _infer_first_coll, _op_remove_key, "map key removal"),
    Operation("dom", 1, lambda s: ANY, _op_dom, "map domain"),
    Operation("has_key", 2, lambda s: BOOL, _op_has_key, "map key test"),
    _aggregate("sum", sum),
    _aggregate("min", min),
    _aggregate("max", max),
    _aggregate("avg", lambda xs: sum(xs) / len(xs)),
    Operation("the", 1, _infer_first_elem, _op_the, "unique element of a singleton"),
    Operation("date", 3, lambda s: DATE, _op_mkdate, "construct a calendar date"),
    Operation("not", 1, lambda s: BOOL, _op_not, "boolean negation"),
    Operation("neg", 1, _numeric_result, _op_neg, "numeric negation"),
    _bool_binop("and", lambda a, b: a and b),
    _bool_binop("or", lambda a, b: a or b),
    _bool_binop("implies", lambda a, b: (not a) or b),
    _bool_binop("xor", lambda a, b: a != b),
):
    _register(_op)


def apply_operation(name: str, args: List[Value]) -> Value:
    """Apply the built-in operation ``name`` to ``args``.

    Raises :class:`~repro.diagnostics.EvaluationError` if the operation is
    unknown, the arity is wrong, or the arguments are ill-sorted.
    """
    op = BUILTIN_OPERATIONS.get(name)
    if op is None:
        raise EvaluationError(f"unknown operation {name!r}")
    if len(args) != op.arity:
        raise EvaluationError(
            f"operation {name!r} expects {op.arity} arguments, got {len(args)}"
        )
    return op.apply(args)
