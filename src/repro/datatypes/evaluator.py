"""Term evaluation.

:func:`evaluate` reduces a :class:`~repro.datatypes.terms.Term` to a
:class:`~repro.datatypes.values.Value` against an :class:`Environment`.
The environment abstracts over where names come from: a plain variable
binding (:class:`MapEnvironment`), an object's attribute state (provided
by the runtime), or an interface's derivation rules.

Quantifiers use *active-domain* semantics (see
:mod:`repro.datatypes.terms`): the candidate domain of a quantified
variable is assembled from the class population (for identity sorts) and
from the values reachable in the current scope (for data sorts).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.diagnostics import EvaluationError
from repro.datatypes.operations import BUILTIN_OPERATIONS, apply_operation
from repro.datatypes.sorts import (
    BOOL,
    IdSort,
    ListSort,
    MapSort,
    SetSort,
    Sort,
    TupleSort,
)
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Exists,
    Forall,
    ListCons,
    Lit,
    QueryOp,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.datatypes.values import (
    Value,
    boolean,
    list_value,
    set_value,
    tuple_value,
)


class Environment:
    """Name-resolution context for term evaluation.

    Subclasses override the lookup hooks.  The default implementations
    raise, so a bare :class:`Environment` evaluates only closed terms.
    """

    def lookup(self, name: str) -> Value:
        """Resolve a variable (or in-scope attribute) name to a value."""
        raise EvaluationError(f"unbound variable {name!r}")

    def lookup_self(self) -> Value:
        """Resolve ``SELF`` to the identity of the current instance."""
        raise EvaluationError("SELF is not bound in this context")

    def attribute_of(self, obj: Value, name: str, args: tuple = ()) -> Value:
        """Observe attribute ``name`` of the object identified by ``obj``.

        ``args`` carries the parameter values of a parametrized attribute
        (``P.IncomeInYear(1990)``).  The base implementation handles
        tuple-field projection and the ``surrogate`` pseudo-attribute;
        object observation requires a runtime-backed environment.
        """
        if isinstance(obj.sort, TupleSort):
            for field_name, field_value in obj.payload:
                if field_name == name:
                    return field_value
            raise EvaluationError(
                f"tuple has no field {name!r} (fields: {obj.sort.field_names})"
            )
        if name == "surrogate":
            return obj
        raise EvaluationError(
            f"cannot observe attribute {name!r} of a value of sort {obj.sort}"
        )

    def class_population(self, class_name: str) -> Iterable[Value]:
        """Identities currently populating class ``class_name``.

        Used as the quantifier domain for identity sorts.  The default is
        the empty population.
        """
        return ()

    def scope_values(self) -> Iterable[Value]:
        """Values reachable from the current scope, used to seed the
        active domain of data-sorted quantifiers."""
        return ()

    def attribute_call(self, name: str, args: tuple) -> Value:
        """Resolve a parametrized-attribute read written in application
        form (``Balance(a)``).  Runtime-backed environments override."""
        raise EvaluationError(f"unknown operation {name!r}")

    def child(self, bindings: Dict[str, Value]) -> "Environment":
        """An environment extending this one with extra bindings."""
        return _ChildEnvironment(self, bindings)


class _ChildEnvironment(Environment):
    """An environment layered over a parent with extra bindings."""

    def __init__(self, parent: Environment, bindings: Dict[str, Value]):
        self._parent = parent
        self._bindings = dict(bindings)

    def lookup(self, name: str) -> Value:
        if name in self._bindings:
            return self._bindings[name]
        return self._parent.lookup(name)

    def lookup_self(self) -> Value:
        return self._parent.lookup_self()

    def attribute_of(self, obj: Value, name: str, args: tuple = ()) -> Value:
        return self._parent.attribute_of(obj, name, args)

    def class_population(self, class_name: str) -> Iterable[Value]:
        return self._parent.class_population(class_name)

    def attribute_call(self, name: str, args: tuple) -> Value:
        return self._parent.attribute_call(name, args)

    def scope_values(self) -> Iterable[Value]:
        yield from self._bindings.values()
        yield from self._parent.scope_values()


class MapEnvironment(Environment):
    """A simple dictionary-backed environment (tests, standalone use)."""

    def __init__(
        self,
        bindings: Optional[Dict[str, Value]] = None,
        self_value: Optional[Value] = None,
        populations: Optional[Dict[str, Iterable[Value]]] = None,
    ):
        self.bindings = dict(bindings or {})
        self.self_value = self_value
        self.populations = {k: list(v) for k, v in (populations or {}).items()}

    def lookup(self, name: str) -> Value:
        if name in self.bindings:
            return self.bindings[name]
        raise EvaluationError(f"unbound variable {name!r}")

    def lookup_self(self) -> Value:
        if self.self_value is None:
            raise EvaluationError("SELF is not bound in this context")
        return self.self_value

    def class_population(self, class_name: str) -> Iterable[Value]:
        return self.populations.get(class_name, ())

    def scope_values(self) -> Iterable[Value]:
        return list(self.bindings.values())


def _harvest(value: Value, sort: Sort, out: List[Value], depth: int = 0) -> None:
    """Collect sub-values of ``value`` compatible with ``sort``."""
    if depth > 6:
        return
    if value.sort.is_compatible_with(sort):
        out.append(value)
    if isinstance(value.sort, (SetSort, ListSort)):
        for item in value.payload:
            _harvest(item, sort, out, depth + 1)
    elif isinstance(value.sort, MapSort):
        for k, v in value.payload:
            _harvest(k, sort, out, depth + 1)
            _harvest(v, sort, out, depth + 1)
    elif isinstance(value.sort, TupleSort):
        for _, v in value.payload:
            _harvest(v, sort, out, depth + 1)


#: per-body classification of harvestable domain nodes, keyed by body
#: identity (terms are immutable; the stored body reference guards
#: against id() reuse).  Bounded: cleared wholesale on overflow so
#: unbounded term churn (fuzzing, ad-hoc queries) cannot leak.
_BODY_NODES_CACHE: Dict[int, Tuple[Term, tuple]] = {}
_BODY_NODES_LIMIT = 4096


def body_domain_nodes(body: Term) -> tuple:
    """The harvestable nodes of a quantifier body, classified once.

    Returns ``(("lit", node) | ("closed", node), ...)`` in walk order:
    literals contribute their value, closed (variable-free) sub-terms
    contribute their evaluation.  Memoized per body object so repeated
    quantifier entries stop re-walking the tree and re-deriving
    free-variable sets on every invocation.
    """
    entry = _BODY_NODES_CACHE.get(id(body))
    if entry is not None and entry[0] is body:
        return entry[1]
    nodes = []
    for node in body.walk():
        if isinstance(node, Lit):
            nodes.append(("lit", node))
        elif not node.free_variables():
            nodes.append(("closed", node))
    result = tuple(nodes)
    if len(_BODY_NODES_CACHE) >= _BODY_NODES_LIMIT:
        _BODY_NODES_CACHE.clear()
    _BODY_NODES_CACHE[id(body)] = (body, result)
    return result


class _ClosedValues:
    """Per-quantifier-entry memo of a body's closed-sub-term values.

    Closed sub-terms cannot mention the quantified variables, so one
    evaluation per quantifier *entry* (under the entry environment)
    replaces the old re-evaluation at every binding level -- the
    quadratic re-work this module used to pay for nested quantifiers.
    Sub-terms whose evaluation raises :class:`EvaluationError`
    contribute nothing, matching the old per-level ``continue``.
    """

    __slots__ = ("_body", "_env", "_items")

    def __init__(self, body: Term, env: Environment):
        self._body = body
        self._env = env
        self._items = None

    def items(self) -> list:
        """``(defined, value)`` pairs in walk order, evaluated lazily on
        the first harvest that needs them (bool/population domains never
        do, so they must not force evaluation -- or its errors)."""
        items = self._items
        if items is None:
            items = []
            for kind, node in body_domain_nodes(self._body):
                if kind == "lit":
                    items.append((True, node.value))
                else:
                    try:
                        items.append((True, evaluate(node, self._env)))
                    except EvaluationError:
                        items.append((False, None))
            self._items = items
        return items


def candidate_domain(
    sort: Sort,
    body: Term,
    env: Environment,
    closed: Optional[_ClosedValues] = None,
) -> List[Value]:
    """The active domain a quantified variable of ``sort`` ranges over.

    * ``bool`` -- the two truth values;
    * identity sorts -- the current class population;
    * other sorts -- every compatible value reachable from (a) the values
      bound in the current scope and (b) the closed sub-terms of the
      quantifier body (e.g. the set a membership test inspects), plus the
      literals occurring in the body.

    ``closed`` carries the per-quantifier-entry memo of the closed
    sub-term values (:class:`_ClosedValues`); standalone calls may omit
    it and pay one fresh evaluation.
    """
    if sort.is_compatible_with(BOOL) and sort.name in ("bool", "boolean"):
        return [boolean(True), boolean(False)]
    if isinstance(sort, IdSort):
        pop = list(env.class_population(sort.class_name))
        if pop:
            return pop
    if closed is None:
        closed = _ClosedValues(body, env)
    out: List[Value] = []
    seen = set()
    for value in env.scope_values():
        _harvest(value, sort, out)
    for defined, value in closed.items():
        if defined:
            _harvest(value, sort, out)
    unique: List[Value] = []
    for v in out:
        if v not in seen:
            seen.add(v)
            unique.append(v)
    return unique


def evaluate(term: Term, env: Optional[Environment] = None) -> Value:
    """Evaluate ``term`` against ``env`` (an empty environment if omitted)."""
    if env is None:
        env = Environment()
    return _eval(term, env)


def _eval(term: Term, env: Environment) -> Value:
    if isinstance(term, Lit):
        return term.value
    if isinstance(term, Var):
        return env.lookup(term.name)
    if isinstance(term, SelfExpr):
        return env.lookup_self()
    if isinstance(term, Apply):
        if term.op == "and":
            # Short-circuit so guards like `x <> 0 and 1/x > 2` are safe.
            left = _eval(term.args[0], env)
            if not bool(left):
                return boolean(False)
            return boolean(bool(_eval(term.args[1], env)))
        if term.op == "or":
            left = _eval(term.args[0], env)
            if bool(left):
                return boolean(True)
            return boolean(bool(_eval(term.args[1], env)))
        if term.op == "implies":
            left = _eval(term.args[0], env)
            if not bool(left):
                return boolean(True)
            return boolean(bool(_eval(term.args[1], env)))
        args = [_eval(a, env) for a in term.args]
        if term.op not in BUILTIN_OPERATIONS:
            # Parametrized-attribute read in application form
            # (``Balance(a)``), resolved by the environment.
            return env.attribute_call(term.op, tuple(args))
        return apply_operation(term.op, args)
    if isinstance(term, TupleCons):
        return _eval_tuple_cons(term, env)
    if isinstance(term, SetCons):
        return set_value(_eval(t, env) for t in term.items)
    if isinstance(term, ListCons):
        return list_value(_eval(t, env) for t in term.items)
    if isinstance(term, AttributeAccess):
        obj = _eval(term.obj, env)
        attr_args = tuple(_eval(a, env) for a in term.args)
        return env.attribute_of(obj, term.attribute, attr_args)
    if isinstance(term, QueryOp):
        return _eval_query(term, env)
    if isinstance(term, Forall):
        return _eval_quantifier(term, env, want=True)
    if isinstance(term, Exists):
        return _eval_quantifier(term, env, want=False)
    raise EvaluationError(f"cannot evaluate term of kind {type(term).__name__}")


def _eval_tuple_cons(term: TupleCons, env: Environment) -> Value:
    fields: Dict[str, Value] = {}
    for index, (name, sub) in enumerate(term.items):
        if name is None:
            if index < len(term.field_names):
                name = term.field_names[index]
            else:
                name = f"_{index + 1}"
        fields[name] = _eval(sub, env)
    return tuple_value(fields)


def _eval_query(term: QueryOp, env: Environment) -> Value:
    source = _eval(term.source, env)
    if not isinstance(source.sort, (SetSort, ListSort)):
        raise EvaluationError(
            f"query {term.op} expects a collection source, got sort {source.sort}"
        )
    items = list(source.payload)
    if term.op == "select":
        kept = []
        for item in items:
            bindings = _tuple_scope(item)
            verdict = _eval(term.param, env.child(bindings))
            if bool(verdict):
                kept.append(item)
        if isinstance(source.sort, SetSort):
            return set_value(kept, source.sort.element)
        return list_value(kept, source.sort.element)
    if term.op == "project":
        names = tuple(term.param)
        projected = []
        for item in items:
            if not isinstance(item.sort, TupleSort):
                raise EvaluationError("project expects a collection of tuples")
            fields = {n: v for n, v in item.payload}
            missing = [n for n in names if n not in fields]
            if missing:
                raise EvaluationError(f"project: unknown fields {missing}")
            if len(names) == 1:
                projected.append(fields[names[0]])
            else:
                projected.append(tuple_value({n: fields[n] for n in names}))
        if isinstance(source.sort, SetSort):
            return set_value(projected)
        return list_value(projected)
    raise EvaluationError(f"unknown query operation {term.op!r}")


def _tuple_scope(item: Value) -> Dict[str, Value]:
    """The variable scope a select-parameter formula sees for one tuple."""
    if isinstance(item.sort, TupleSort):
        return {n: v for n, v in item.payload}
    # Non-tuple elements are in scope as `it`.
    return {"it": item}


def _eval_quantifier(term, env: Environment, want: bool) -> Value:
    """Evaluate ``Forall`` (want=True) / ``Exists`` (want=False).

    ``Forall`` succeeds unless a counterexample is found; ``Exists``
    succeeds as soon as a witness is found.
    """
    return boolean(_quantify(term.variables, term.body, env, want))


def _quantify(
    variables,
    body: Term,
    env: Environment,
    want: bool,
    closed: Optional[_ClosedValues] = None,
) -> bool:
    if not variables:
        try:
            result = bool(_eval(body, env))
        except EvaluationError:
            # A binding for which the body is undefined neither witnesses
            # an Exists nor refutes a Forall.
            return want
        return result
    if closed is None:
        # One closed-sub-term evaluation per quantifier entry, shared by
        # every binding level below (see _ClosedValues).
        closed = _ClosedValues(body, env)
    (name, sort), rest = variables[0], variables[1:]
    domain = candidate_domain(sort, body, env, closed)
    for value in domain:
        outcome = _quantify(rest, body, env.child({name: value}), want, closed)
        if want and not outcome:
            return False
        if not want and outcome:
            return True
    return want
