"""The sort system underlying TROLL data values.

Sorts classify data values.  The paper's listings use the base sorts
``string``, ``date``, ``integer``, ``money``, ``nat``, ``bool``, ``real``
and ``char``, the parametrized constructors ``set(...)``, ``list(...)``,
``map(...)`` and ``tuple(field: sort, ...)``, and *identity sorts*: the
sort of surrogates (object identities) of a class ``C``, written ``|C|``
in TROLL concrete syntax (and often abbreviated to the bare class name in
variable declarations, e.g. ``P: PERSON``).

Sorts are immutable and hashable so they can serve as dictionary keys in
signatures.  Sort compatibility is structural; :data:`ANY` is compatible
with everything and is used by polymorphic built-in operations (e.g. the
element sort of the empty set literal ``{}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Sort:
    """A base sort, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def is_compatible_with(self, other: "Sort") -> bool:
        """Structural compatibility check used by the static checker."""
        if self is ANY or other is ANY or self.name == "any" or other.name == "any":
            return True
        if type(self) is Sort and type(other) is Sort:
            if self.name == other.name:
                return True
            # The numeric tower: nat <= integer <= money/real.
            return (self.name in _NUMERIC and other.name in _NUMERIC)
        return False


@dataclass(frozen=True)
class IdSort(Sort):
    """The sort of object identities (surrogates) of class ``class_name``.

    Written ``|C|`` in TROLL concrete syntax.
    """

    class_name: str = ""

    def __str__(self) -> str:
        return f"|{self.class_name}|"

    def is_compatible_with(self, other: Sort) -> bool:
        if other is ANY or other.name == "any":
            return True
        return isinstance(other, IdSort) and other.class_name == self.class_name


@dataclass(frozen=True)
class SetSort(Sort):
    """``set(element)`` -- finite sets over an element sort."""

    element: Sort = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"set({self.element})"

    def is_compatible_with(self, other: Sort) -> bool:
        if other is ANY or other.name == "any":
            return True
        return isinstance(other, SetSort) and self.element.is_compatible_with(other.element)


@dataclass(frozen=True)
class ListSort(Sort):
    """``list(element)`` -- finite sequences over an element sort."""

    element: Sort = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"list({self.element})"

    def is_compatible_with(self, other: Sort) -> bool:
        if other is ANY or other.name == "any":
            return True
        return isinstance(other, ListSort) and self.element.is_compatible_with(other.element)


@dataclass(frozen=True)
class MapSort(Sort):
    """``map(key, value)`` -- finite maps from a key sort to a value sort."""

    key: Sort = None  # type: ignore[assignment]
    value: Sort = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"map({self.key}, {self.value})"

    def is_compatible_with(self, other: Sort) -> bool:
        if other is ANY or other.name == "any":
            return True
        return (
            isinstance(other, MapSort)
            and self.key.is_compatible_with(other.key)
            and self.value.is_compatible_with(other.value)
        )


@dataclass(frozen=True)
class TupleSort(Sort):
    """``tuple(f1: s1, ..., fn: sn)`` -- records with named fields.

    The paper uses ``tuple`` both as the sort constructor and as the value
    constructor (`emp_rel`'s ``Emps : set(tuple(ename:string, ...))``).
    """

    fields: Tuple[Tuple[str, Sort], ...] = field(default=())

    def __str__(self) -> str:
        inner = ", ".join(f"{n}:{s}" for n, s in self.fields)
        return f"tuple({inner})"

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.fields)

    def field_sort(self, name: str) -> Optional[Sort]:
        for n, s in self.fields:
            if n == name:
                return s
        return None

    def is_compatible_with(self, other: Sort) -> bool:
        if other is ANY or other.name == "any":
            return True
        if not isinstance(other, TupleSort):
            return False
        if len(self.fields) != len(other.fields):
            return False
        return all(
            a[0] == b[0] and a[1].is_compatible_with(b[1])
            for a, b in zip(self.fields, other.fields)
        )


_NUMERIC = frozenset({"nat", "integer", "money", "real"})

#: The base sorts used throughout the paper's listings.
NAT = Sort("nat")
INTEGER = Sort("integer")
REAL = Sort("real")
MONEY = Sort("money")
STRING = Sort("string")
CHAR = Sort("char")
BOOL = Sort("bool")
DATE = Sort("date")
#: Compatible with every sort; used by polymorphic operations.
ANY = Sort("any")

_BASE_SORTS = {
    s.name: s
    for s in (NAT, INTEGER, REAL, MONEY, STRING, CHAR, BOOL, DATE, ANY)
}
_BASE_SORTS["boolean"] = BOOL
_BASE_SORTS["int"] = INTEGER


def is_numeric(sort: Sort) -> bool:
    """True for members of the numeric tower (nat, integer, money, real)."""
    return type(sort) is Sort and sort.name in _NUMERIC


def base_sort(name: str) -> Optional[Sort]:
    """Look up a base sort by name, or ``None`` if unknown."""
    return _BASE_SORTS.get(name)


def parse_sort_name(name: str) -> Sort:
    """Resolve a simple (non-parametrized) sort name.

    Base sort names resolve to base sorts; anything else is treated as an
    identity sort for a class of that name, matching the paper's usage of
    bare class names as surrogate sorts (``manager: PERSON``).
    """
    known = base_sort(name)
    if known is not None:
        return known
    if name.startswith("|") and name.endswith("|"):
        return IdSort(name=name, class_name=name[1:-1])
    return IdSort(name=f"|{name}|", class_name=name)
