"""The data-valued term language.

Terms appear everywhere in a TROLL specification: on the right-hand side
of valuation rules, inside permission and constraint formulas, in
derivation rules of interfaces, and as event parameters.  This module
defines the term AST; evaluation lives in
:mod:`repro.datatypes.evaluator`.

Formulas are simply terms of sort ``bool`` -- the connectives ``and``,
``or``, ``not`` and ``⇒`` are ordinary operations, and the quantifiers
:class:`Forall` / :class:`Exists` are term forms.  (Temporal formulas,
which talk about an object's *history* rather than a single state, live
in :mod:`repro.temporal`.)

Quantifier semantics follow the *active domain* convention of relational
calculus: a quantified variable of an identity sort ranges over the
current population of the corresponding class, and a variable of a data
sort ranges over the values harvested from the collections in scope (see
:func:`repro.datatypes.evaluator.candidate_domain`).  This matches every
quantified formula in the paper -- e.g. ``exists(s1: integer)
in(Emps, tuple(n, b, s1))`` only ever needs salaries already in ``Emps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.datatypes.sorts import Sort
from repro.datatypes.values import Value
from repro.diagnostics import SourcePosition


@dataclass(frozen=True)
class Term:
    """Base class of all term forms."""

    position: Optional[SourcePosition] = field(default=None, compare=False, repr=False)

    def children(self) -> Sequence["Term"]:
        """Immediate sub-terms, for generic traversals."""
        return ()

    def walk(self) -> Iterator["Term"]:
        """Pre-order traversal of the term tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def free_variables(self) -> frozenset:
        """Names of variables occurring free in this term."""
        if isinstance(self, Var):
            return frozenset({self.name})
        if isinstance(self, (Forall, Exists)):
            bound = {n for n, _ in self.variables}
            return self.body.free_variables() - bound
        result = set()
        for child in self.children():
            result |= child.free_variables()
        return frozenset(result)


@dataclass(frozen=True)
class Lit(Term):
    """A literal value."""

    value: Value = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Term):
    """A variable reference (declared in a ``variables`` clause, bound by
    a quantifier, or naming an event parameter)."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SelfExpr(Term):
    """``SELF`` / ``self`` -- the identity of the instance under
    evaluation (used in selection clauses and interaction rules)."""

    def __str__(self) -> str:
        return "self"


@dataclass(frozen=True)
class Apply(Term):
    """Application of a (built-in) operation to argument terms."""

    op: str = ""
    args: Tuple[Term, ...] = ()

    def children(self) -> Sequence[Term]:
        return self.args

    def __str__(self) -> str:
        if self.op in {"=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/",
                       "and", "or", "implies", "in"} and len(self.args) == 2:
            op = "=>" if self.op == "implies" else self.op
            return f"({self.args[0]} {op} {self.args[1]})"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


@dataclass(frozen=True)
class TupleCons(Term):
    """``tuple(e1, ..., en)`` or ``tuple(f1: e1, ...)`` -- record creation.

    Positional fields get their names from the expected tuple sort at
    evaluation time (``field_names``), matching the paper's positional
    usage ``tuple(n, b, s)``.
    """

    items: Tuple[Tuple[Optional[str], Term], ...] = ()
    field_names: Tuple[str, ...] = ()

    def children(self) -> Sequence[Term]:
        return tuple(t for _, t in self.items)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{n}: {t}" if n else str(t) for n, t in self.items
        )
        return f"tuple({inner})"


@dataclass(frozen=True)
class SetCons(Term):
    """``{e1, ..., en}`` -- set display (``{}`` is the empty set)."""

    items: Tuple[Term, ...] = ()

    def children(self) -> Sequence[Term]:
        return self.items

    def __str__(self) -> str:
        return "{" + ", ".join(str(t) for t in self.items) + "}"


@dataclass(frozen=True)
class ListCons(Term):
    """``< e1, ..., en >`` -- list display."""

    items: Tuple[Term, ...] = ()

    def children(self) -> Sequence[Term]:
        return self.items

    def __str__(self) -> str:
        return "<" + ", ".join(str(t) for t in self.items) + ">"


@dataclass(frozen=True)
class AttributeAccess(Term):
    """``e.name`` -- attribute observation or tuple-field projection.

    When ``e`` evaluates to an object identity the environment resolves
    the observation against the named instance's current state
    (``SELF.Dept``, ``D.id``); when ``e`` evaluates to a tuple value the
    field is projected directly.  The pseudo-attribute ``surrogate``
    yields the identity itself (``P.surrogate in D.employees``).
    """

    obj: Term = None  # type: ignore[assignment]
    attribute: str = ""
    args: Tuple[Term, ...] = ()

    def children(self) -> Sequence[Term]:
        return (self.obj,) + self.args

    def __str__(self) -> str:
        suffix = f"({', '.join(str(a) for a in self.args)})" if self.args else ""
        return f"{self.obj}.{self.attribute}{suffix}"


#: Component access shares the syntax and semantics of attribute access;
#: the runtime resolves the name against components first, then
#: attributes.  The alias documents intent at use sites.
ComponentAccess = AttributeAccess


@dataclass(frozen=True)
class QueryOp(Term):
    """A query-algebra operation with a binding parameter.

    The paper's derivation rules use an object query algebra (Section
    5.1, [SJ90]): ``select`` filters a collection of tuples by a formula
    over the tuple's fields, ``project`` maps tuples to a subset of their
    fields.  ``op`` is ``"select"`` or ``"project"``; ``param`` is the
    filter formula resp. the tuple of field names; ``source`` is the
    collection-valued term being queried.

    Inside a ``select`` parameter formula, the fields of the tuple under
    test are in scope as variables.
    """

    op: str = ""
    param: object = None
    source: Term = None  # type: ignore[assignment]

    def children(self) -> Sequence[Term]:
        kids = [self.source]
        if isinstance(self.param, Term):
            kids.append(self.param)
        return tuple(kids)

    def __str__(self) -> str:
        if self.op == "project":
            return f"project[{', '.join(self.param)}]({self.source})"
        return f"select[{self.param}]({self.source})"


@dataclass(frozen=True)
class _Quantifier(Term):
    """Shared structure of :class:`Forall` and :class:`Exists`."""

    variables: Tuple[Tuple[str, Sort], ...] = ()
    body: Term = None  # type: ignore[assignment]

    def children(self) -> Sequence[Term]:
        return (self.body,)

    def __str__(self) -> str:
        decls = ", ".join(f"{n}: {s}" for n, s in self.variables)
        word = "for all" if isinstance(self, Forall) else "exists"
        return f"{word}({decls} : {self.body})"


@dataclass(frozen=True)
class Forall(_Quantifier):
    """``for all(x: S, ... : φ)`` -- universal quantification."""


@dataclass(frozen=True)
class Exists(_Quantifier):
    """``exists(x: S, ... : φ)`` -- existential quantification."""
