"""Closure compilation of checked terms.

The tree-walking interpreter (:mod:`repro.datatypes.evaluator`) pays,
on every evaluation, for dispatch (an isinstance chain per node),
name resolution (dict-copying child environments per binding), and
quantifier-domain derivation (re-walking the body and re-evaluating its
closed sub-terms at every binding level).  This module lowers a checked
:class:`~repro.datatypes.terms.Term` *once* into a tree of Python
closures, so a rule that fires on every event occurrence evaluates with

* **pre-resolved dispatch** -- each node's behaviour is chosen at
  compile time; operation implementations (``Operation.apply``) are
  looked up once, not per application;
* **constant folding** -- closed sub-terms built from literals and
  built-in operations are evaluated at compile time (folds that raise
  are declined, preserving the interpreter's runtime errors);
* **slot-based frames** -- quantifier binders live in a flat list
  indexed at compile time instead of layered dict environments;
* **quantifier-domain plans** -- the body's harvestable nodes are
  classified at compile time, literal harvests are precomputed per
  variable sort, and closed sub-terms are evaluated once per quantifier
  *entry* instead of once per binding level.

The interpreter stays the behaviour oracle: :func:`compile_term`
*declines* (returns ``None``) on anything it cannot reproduce
bit-for-bit, and :func:`evaluate_term` then falls back to
:func:`~repro.datatypes.evaluator.evaluate`.  Compiled closures resolve
every mutable read through the same :class:`Environment` seams the
interpreter uses (``lookup`` / ``lookup_self`` / ``attribute_of`` /
``attribute_call`` / ``class_population`` / ``scope_values``), so the
probe-memoization dependency contract of docs/PERFORMANCE.md is
preserved unchanged.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Tuple

from repro.diagnostics import EvaluationError
from repro.datatypes.evaluator import (
    Environment,
    _harvest,
    _tuple_scope,
    body_domain_nodes,
    evaluate,
)
from repro.datatypes.operations import BUILTIN_OPERATIONS, apply_operation
from repro.datatypes.sorts import (
    BOOL,
    INTEGER,
    MONEY,
    NAT,
    REAL,
    _NUMERIC,
    IdSort,
    ListSort,
    MapSort,
    SetSort,
    Sort,
    TupleSort,
)
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    Exists,
    Forall,
    ListCons,
    Lit,
    QueryOp,
    SelfExpr,
    SetCons,
    Term,
    TupleCons,
    Var,
)
from repro.datatypes.values import (
    FALSE,
    TRUE,
    Value,
    boolean,
    list_value,
    set_value,
    tuple_value,
)

#: a compiled node: (environment, binder frame) -> Value
_Fn = Callable[[Environment, list], Value]

#: shared frame for compiled terms that bind no variables (never written)
_EMPTY_FRAME: list = []

#: marker for a closed sub-term whose evaluation raised EvaluationError
#: (it contributes nothing to the domain, matching the interpreter)
_SKIP = object()

_BOOL_DOMAIN = (TRUE, FALSE)


class TermCompileStats:
    """Always-on plain-int accounting of the compiler seam.  The
    observability counters ``term_compile.{compiled,fallbacks,
    cache_hits}`` are live views over this object -- no per-evaluation
    callback."""

    __slots__ = ("compiled", "fallbacks", "cache_hits")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: terms successfully lowered to closures
        self.compiled = 0
        #: evaluations answered by the tree-walking interpreter because
        #: the compiler declined the term
        self.fallbacks = 0
        #: evaluations answered by a previously compiled closure
        self.cache_hits = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "compiled": self.compiled,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
        }


STATS = TermCompileStats()


class _Decline(Exception):
    """Raised during compilation for term shapes the compiler does not
    reproduce; the caller falls back to the interpreter."""


class _Region:
    """Slot accounting for one binder frame.

    A region covers one top-level term; quantifiers extend the frame,
    and sub-terms evaluated under materialized environments (select
    parameters, closed quantifier sub-terms) open fresh regions with
    their own frames.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: int = 0):
        self.slots = slots


class CompiledTerm:
    """A term lowered to a closure; call with an environment."""

    __slots__ = ("term", "_fn", "_slots")

    def __init__(self, term: Term, fn: _Fn, slots: int):
        self.term = term
        self._fn = fn
        self._slots = slots

    def __call__(self, env: Optional[Environment] = None) -> Value:
        if env is None:
            env = Environment()
        frame = [None] * self._slots if self._slots else _EMPTY_FRAME
        return self._fn(env, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledTerm {self.term!r} slots={self._slots}>"


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLD_ENV = Environment()


def _is_pure(term: Term) -> bool:
    """Can ``term`` be evaluated at compile time?  True only for terms
    whose value cannot depend on the environment: literals, collection
    and tuple constructors of pure parts, and built-in operations over
    pure arguments (including the short-circuit connectives, which
    :func:`evaluate` handles).  Everything touching a name, SELF, an
    attribute, a query or a quantifier is impure."""
    if isinstance(term, Lit):
        return True
    if isinstance(term, Apply):
        if term.op not in BUILTIN_OPERATIONS:
            return False  # resolves through env.attribute_call at runtime
        return all(_is_pure(a) for a in term.args)
    if isinstance(term, (SetCons, ListCons)):
        return all(_is_pure(t) for t in term.items)
    if isinstance(term, TupleCons):
        return all(_is_pure(t) for _, t in term.items)
    return False


def _try_fold(term: Term) -> Optional[Value]:
    """The compile-time value of ``term``, or None.  A fold that raises
    *anything* is declined so the compiled closure reproduces the
    interpreter's runtime error instead of a compile-time crash."""
    if not _is_pure(term):
        return None
    try:
        return evaluate(term, _FOLD_ENV)
    except Exception:
        return None


# ----------------------------------------------------------------------
# Node compilation
# ----------------------------------------------------------------------


def _compile(term: Term, scope: Tuple[str, ...], region: _Region) -> _Fn:
    if isinstance(term, Lit):
        value = term.value
        return lambda env, frame: value
    folded = _try_fold(term)
    if folded is not None:
        return lambda env, frame: folded
    if isinstance(term, Var):
        return _compile_var(term, scope)
    if isinstance(term, SelfExpr):
        return lambda env, frame: env.lookup_self()
    if isinstance(term, Apply):
        return _compile_apply(term, scope, region)
    if isinstance(term, TupleCons):
        return _compile_tuple_cons(term, scope, region)
    if isinstance(term, SetCons):
        item_fns = tuple(_compile(t, scope, region) for t in term.items)
        return lambda env, frame: set_value(fn(env, frame) for fn in item_fns)
    if isinstance(term, ListCons):
        item_fns = tuple(_compile(t, scope, region) for t in term.items)
        return lambda env, frame: list_value(fn(env, frame) for fn in item_fns)
    if isinstance(term, AttributeAccess):
        return _compile_attribute_access(term, scope, region)
    if isinstance(term, QueryOp):
        if term.op == "select":
            return _compile_select(term, scope, region)
        if term.op == "project":
            return _compile_project(term, scope, region)
        raise _Decline(f"query op {term.op!r}")
    if isinstance(term, (Forall, Exists)):
        return _compile_quantifier(term, scope, region)
    raise _Decline(type(term).__name__)


def _compile_var(term: Var, scope: Tuple[str, ...]) -> _Fn:
    name = term.name
    # Innermost enclosing binder wins (shadowing), else the environment.
    for slot in range(len(scope) - 1, -1, -1):
        if scope[slot] == name:
            return lambda env, frame: frame[slot]
    return lambda env, frame: env.lookup(name)


def _as_bool(value: Value) -> bool:
    """Truthiness with an identity fast path for the shared boolean
    singletons (the overwhelmingly common case inside connectives and
    quantifier bodies); everything else takes ``Value.__bool__``,
    including its TypeError on non-booleans."""
    if value is TRUE:
        return True
    if value is FALSE:
        return False
    return bool(value)


def _fast_arith(py_fn):
    """A specialized integer fast path for ``+``/``-``/``*``.

    Exactly replicates ``_arith``'s result on nat/integer operands with
    int payloads (closed under these operations, promotion ``nat*nat ->
    nat`` else ``integer``); anything else -- floats, money, real,
    non-numeric sorts, their errors -- routes through the pre-resolved
    ``Operation.apply``."""

    def make(fn0, fn1, apply):
        def run(env, frame):
            a = fn0(env, frame)
            b = fn1(env, frame)
            sa = a.sort
            sb = b.sort
            if (
                (sa is NAT or sa is INTEGER)
                and (sb is NAT or sb is INTEGER)
                and type(a.payload) is int
                and type(b.payload) is int
            ):
                return Value(
                    NAT if (sa is NAT and sb is NAT) else INTEGER,
                    py_fn(a.payload, b.payload),
                )
            return apply((a, b))

        return run

    return make


def _fast_compare(py_fn):
    """Numeric comparisons return the shared boolean singletons without
    the generic sort negotiation (which ``_compare`` only performs for
    non-numeric operands anyway)."""

    def make(fn0, fn1, apply):
        def run(env, frame):
            a = fn0(env, frame)
            b = fn1(env, frame)
            sa = a.sort
            sb = b.sort
            if (sa is NAT or sa is INTEGER or sa is MONEY or sa is REAL) and (
                sb is NAT or sb is INTEGER or sb is MONEY or sb is REAL
            ):
                return TRUE if py_fn(a.payload, b.payload) else FALSE
            return apply((a, b))

        return run

    return make


def _fast_in(fn0, fn1, apply):
    """``in(coll, elem)`` with the collection in the conventional first
    position skips ``_collection_first``'s order normalisation."""

    def run(env, frame):
        a = fn0(env, frame)
        b = fn1(env, frame)
        if isinstance(a.sort, (SetSort, ListSort)):
            return TRUE if b in a.payload else FALSE
        return apply((a, b))

    return run


#: binary builtins with a compile-time-specialized fast path; each maker
#: takes (fn0, fn1, generic_apply) and must fall back to generic_apply
#: for every operand shape it does not reproduce exactly
_FAST_BINARY = {
    "+": _fast_arith(operator.add),
    "-": _fast_arith(operator.sub),
    "*": _fast_arith(operator.mul),
    "=": _fast_compare(operator.eq),
    "<>": _fast_compare(operator.ne),
    "<": _fast_compare(operator.lt),
    "<=": _fast_compare(operator.le),
    ">": _fast_compare(operator.gt),
    ">=": _fast_compare(operator.ge),
    "in": _fast_in,
}


def _compile_apply(term: Apply, scope: Tuple[str, ...], region: _Region) -> _Fn:
    op_name = term.op
    if op_name in ("and", "or", "implies"):
        # The interpreter short-circuits these (so `x <> 0 and 1/x > 2`
        # stays safe) and reads exactly args[0] / args[1].
        if len(term.args) < 2:
            raise _Decline(f"{op_name} with {len(term.args)} arguments")
        left = _compile(term.args[0], scope, region)
        right = _compile(term.args[1], scope, region)
        if op_name == "and":

            def run(env, frame):
                if not _as_bool(left(env, frame)):
                    return FALSE
                return TRUE if _as_bool(right(env, frame)) else FALSE

        elif op_name == "or":

            def run(env, frame):
                if _as_bool(left(env, frame)):
                    return TRUE
                return TRUE if _as_bool(right(env, frame)) else FALSE

        else:

            def run(env, frame):
                if not _as_bool(left(env, frame)):
                    return TRUE
                return TRUE if _as_bool(right(env, frame)) else FALSE

        return run
    arg_fns = tuple(_compile(a, scope, region) for a in term.args)
    operation = BUILTIN_OPERATIONS.get(op_name)
    if operation is None:
        # Parametrized-attribute read in application form (`Balance(a)`),
        # resolved by the environment at runtime.
        return lambda env, frame: env.attribute_call(
            op_name, tuple(fn(env, frame) for fn in arg_fns)
        )
    if operation.arity != len(arg_fns):
        # Keep the interpreter's behaviour: arguments evaluate first,
        # then the arity error raises.
        return lambda env, frame: apply_operation(
            op_name, [fn(env, frame) for fn in arg_fns]
        )
    apply = operation.apply
    if len(arg_fns) == 1:
        (fn0,) = arg_fns
        return lambda env, frame: apply((fn0(env, frame),))
    if len(arg_fns) == 2:
        fn0, fn1 = arg_fns
        fast = _FAST_BINARY.get(op_name)
        if fast is not None:
            return fast(fn0, fn1, apply)
        return lambda env, frame: apply((fn0(env, frame), fn1(env, frame)))
    return lambda env, frame: apply(tuple(fn(env, frame) for fn in arg_fns))


def _compile_tuple_cons(
    term: TupleCons, scope: Tuple[str, ...], region: _Region
) -> _Fn:
    pairs = []
    for index, (name, sub) in enumerate(term.items):
        if name is None:
            if index < len(term.field_names):
                name = term.field_names[index]
            else:
                name = f"_{index + 1}"
        pairs.append((name, _compile(sub, scope, region)))
    pairs = tuple(pairs)
    return lambda env, frame: tuple_value(
        {name: fn(env, frame) for name, fn in pairs}
    )


def _compile_attribute_access(
    term: AttributeAccess, scope: Tuple[str, ...], region: _Region
) -> _Fn:
    obj_fn = _compile(term.obj, scope, region)
    attribute = term.attribute
    arg_fns = tuple(_compile(a, scope, region) for a in term.args)
    if not arg_fns:
        return lambda env, frame: env.attribute_of(obj_fn(env, frame), attribute, ())

    def run(env, frame):
        obj = obj_fn(env, frame)
        return env.attribute_of(
            obj, attribute, tuple(fn(env, frame) for fn in arg_fns)
        )

    return run


def _materialize(env: Environment, scope_names: Tuple[str, ...], frame: list):
    """Rebuild the enclosing binders as environment layers (outermost
    first, so the innermost binder shadows and its value leads
    ``scope_values``) -- for sub-terms that must evaluate under a plain
    environment: select parameters (whose tuple fields may shadow any
    binder) and closed quantifier sub-terms (whose own nested
    quantifiers harvest the scope)."""
    for slot, name in enumerate(scope_names):
        env = env.child({name: frame[slot]})
    return env


def _compile_select(term: QueryOp, scope: Tuple[str, ...], region: _Region) -> _Fn:
    src_fn = _compile(term.source, scope, region)
    param_fn, param_slots = _compile_region(term.param)
    scope_names = tuple(scope)

    def run(env, frame):
        source = src_fn(env, frame)
        if not isinstance(source.sort, (SetSort, ListSort)):
            raise EvaluationError(
                f"query select expects a collection source, got sort {source.sort}"
            )
        base = _materialize(env, scope_names, frame)
        kept = []
        for item in source.payload:
            pframe = [None] * param_slots if param_slots else _EMPTY_FRAME
            if _as_bool(param_fn(base.child(_tuple_scope(item)), pframe)):
                kept.append(item)
        if isinstance(source.sort, SetSort):
            return set_value(kept, source.sort.element)
        return list_value(kept, source.sort.element)

    return run


def _compile_project(term: QueryOp, scope: Tuple[str, ...], region: _Region) -> _Fn:
    src_fn = _compile(term.source, scope, region)
    names = tuple(term.param)

    def run(env, frame):
        source = src_fn(env, frame)
        if not isinstance(source.sort, (SetSort, ListSort)):
            raise EvaluationError(
                f"query project expects a collection source, got sort {source.sort}"
            )
        projected = []
        for item in source.payload:
            if not isinstance(item.sort, TupleSort):
                raise EvaluationError("project expects a collection of tuples")
            fields = {n: v for n, v in item.payload}
            missing = [n for n in names if n not in fields]
            if missing:
                raise EvaluationError(f"project: unknown fields {missing}")
            if len(names) == 1:
                projected.append(fields[names[0]])
            else:
                projected.append(tuple_value({n: fields[n] for n in names}))
        if isinstance(source.sort, SetSort):
            return set_value(projected)
        return list_value(projected)

    return run


#: plain-sort names a numeric target sort harvests (the numeric tower
#: plus ``any``, exactly the sorts ``Sort.is_compatible_with`` admits)
_NUM_OR_ANY = frozenset(_NUMERIC | {"any"})


def _harvest_numeric(value: Value, out: List[Value], depth: int = 0) -> None:
    """:func:`_harvest` specialized for numeric target sorts: identical
    yield, without the per-value ``is_compatible_with`` dispatch.  A
    value lands in the domain iff its sort is a plain numeric (or
    ``any``) sort; containers recurse to the same depth bound."""
    if depth > 6:
        return
    sort = value.sort
    kind = type(sort)
    if kind is Sort:
        if sort.name in _NUM_OR_ANY:
            out.append(value)
        return
    if kind is SetSort or kind is ListSort:
        for item in value.payload:
            _harvest_numeric(item, out, depth + 1)
    elif kind is MapSort:
        for k, v in value.payload:
            _harvest_numeric(k, out, depth + 1)
            _harvest_numeric(v, out, depth + 1)
    elif kind is TupleSort:
        for _, v in value.payload:
            _harvest_numeric(v, out, depth + 1)


def _dedup_numeric(out: List[Value]) -> List[Value]:
    """Order-preserving dedup keyed on payloads for numeric values
    (cross-tower payload equality is exactly ``Value.__eq__``'s numeric
    rule, without re-hashing Value wrappers); rare ``any``-sorted
    strays keep Value-identity keys so they never merge with numerics."""
    seen = set()
    unique: List[Value] = []
    for v in out:
        key = v.payload if v.sort.name in _NUMERIC else v
        if key not in seen:
            seen.add(key)
            unique.append(v)
    return unique


def _compile_quantifier(term, scope: Tuple[str, ...], region: _Region) -> _Fn:
    """Forall/Exists with a compile-time domain plan.

    Per variable the plan fixes: the bool fast path, the population
    class to scan (identity sorts), the precomputed harvest of the
    body's literals for this sort, and which closed sub-terms to
    harvest.  At runtime, closed sub-terms evaluate lazily *once per
    quantifier entry* (under the entry environment, binders
    materialized), never per binding level -- mirroring the
    interpreter's per-entry memo (`_ClosedValues`)."""
    want = isinstance(term, Forall)
    names = tuple(name for name, _ in term.variables)
    body = term.body
    base = len(scope)
    inner_scope = scope + names
    if len(inner_scope) > region.slots:
        region.slots = len(inner_scope)
    body_fn = _compile(body, inner_scope, region)
    scope_names = tuple(scope)

    # Classify the body's harvestable nodes once (shared cache with the
    # interpreter); closed sub-terms compile into their own regions.
    closed_fns: List[Tuple[_Fn, int]] = []
    steps_template: List[Tuple[str, object]] = []
    for kind, node in body_domain_nodes(body):
        if kind == "lit":
            steps_template.append(("lit", node.value))
        else:
            steps_template.append(("closed", len(closed_fns)))
            closed_fns.append(_compile_region(node))

    # (is_bool, sort, population class, harvest steps, enclosing binder
    # slots innermost-first) per quantified variable.
    plans = []
    for index, (name, sort) in enumerate(term.variables):
        if sort.is_compatible_with(BOOL) and sort.name in ("bool", "boolean"):
            plans.append((True, None, None, (), (), False))
            continue
        id_class = sort.class_name if isinstance(sort, IdSort) else None
        steps: List[Tuple[Optional[int], Optional[tuple]]] = []
        for kind, payload in steps_template:
            if kind == "lit":
                harvested: List[Value] = []
                _harvest(payload, sort, harvested)
                if harvested:
                    steps.append((None, tuple(harvested)))
            else:
                steps.append((payload, None))
        binder_slots = tuple(range(base + index - 1, -1, -1))
        numeric = type(sort) is Sort and sort.name in _NUMERIC
        plans.append((False, sort, id_class, tuple(steps), binder_slots, numeric))
    plans = tuple(plans)
    nvars = len(names)

    def run(env, frame):
        closed_cell: List[list] = []

        def closed_values() -> list:
            if not closed_cell:
                menv = _materialize(env, scope_names, frame)
                values = []
                for fn, slots in closed_fns:
                    try:
                        values.append(
                            fn(menv, [None] * slots if slots else _EMPTY_FRAME)
                        )
                    except EvaluationError:
                        values.append(_SKIP)
                closed_cell.append(values)
            return closed_cell[0]

        def level(index: int) -> bool:
            if index == nvars:
                try:
                    return _as_bool(body_fn(env, frame))
                except EvaluationError:
                    # A binding for which the body is undefined neither
                    # witnesses an Exists nor refutes a Forall.
                    return want
            is_bool, sort, id_class, steps, binder_slots, numeric = plans[index]
            if is_bool:
                domain = _BOOL_DOMAIN
            else:
                domain = None
                if id_class is not None:
                    population = list(env.class_population(id_class))
                    if population:
                        domain = population
                if domain is None:
                    out: List[Value] = []
                    if numeric:
                        for slot in binder_slots:
                            _harvest_numeric(frame[slot], out)
                        for value in env.scope_values():
                            _harvest_numeric(value, out)
                    else:
                        for slot in binder_slots:
                            _harvest(frame[slot], sort, out)
                        for value in env.scope_values():
                            _harvest(value, sort, out)
                    for closed_index, harvested in steps:
                        if harvested is not None:
                            out.extend(harvested)
                        else:
                            value = closed_values()[closed_index]
                            if value is not _SKIP:
                                if numeric:
                                    _harvest_numeric(value, out)
                                else:
                                    _harvest(value, sort, out)
                    if numeric:
                        domain = _dedup_numeric(out)
                    else:
                        seen = set()
                        domain = []
                        for v in out:
                            if v not in seen:
                                seen.add(v)
                                domain.append(v)
            slot = base + index
            for value in domain:
                frame[slot] = value
                outcome = level(index + 1)
                if want and not outcome:
                    return False
                if not want and outcome:
                    return True
            return want

        return boolean(level(0))

    return run


def _compile_region(term: Term) -> Tuple[_Fn, int]:
    """Compile ``term`` with a fresh binder frame; returns the node
    function and the frame size it needs."""
    region = _Region()
    fn = _compile(term, (), region)
    return fn, region.slots


# ----------------------------------------------------------------------
# Public seam
# ----------------------------------------------------------------------


def compile_term(term: Term) -> Optional[CompiledTerm]:
    """Lower ``term`` to a closure, or ``None`` when the compiler
    declines it (unknown term kinds, malformed connectives) -- callers
    then use the interpreter.  Never raises: a compiler defect must not
    take the animator down, so unexpected compile-time errors also
    decline."""
    try:
        fn, slots = _compile_region(term)
    except _Decline:
        return None
    except Exception:  # pragma: no cover - defensive fallback
        return None
    return CompiledTerm(term, fn, slots)


#: module-global compiled-term cache: id(term) -> (term, CompiledTerm or
#: None-for-declined).  The stored term reference guards against id()
#: reuse; bounded and cleared wholesale on overflow so fuzzing or ad-hoc
#: query churn cannot leak.  Long-lived rule bodies should prefer an
#: owner cache (``CompiledClass.term_cache``), which survives overflow.
_GLOBAL_CACHE: Dict[int, Tuple[Term, Optional[CompiledTerm]]] = {}
_GLOBAL_CACHE_LIMIT = 4096


def evaluate_term(
    term: Term,
    env: Optional[Environment] = None,
    cache: Optional[Dict[int, Tuple[Term, Optional[CompiledTerm]]]] = None,
    obs=None,
) -> Value:
    """Drop-in replacement for :func:`repro.datatypes.evaluator.evaluate`
    through the closure compiler.

    ``cache`` is the owner's compiled-body store (e.g. a
    ``CompiledClass``'s); ``None`` uses the bounded module-global cache.
    Declined terms fall back to the interpreter.  Outcomes are counted
    in the always-on :data:`STATS`; observability's ``term_compile.*``
    counters are live views over it, so ``obs`` is accepted for
    compatibility but no longer consulted per evaluation.
    """
    store = _GLOBAL_CACHE if cache is None else cache
    entry = store.get(id(term))
    if entry is not None and entry[0] is term:
        compiled = entry[1]
        fresh = False
    else:
        compiled = compile_term(term)
        if store is _GLOBAL_CACHE and len(store) >= _GLOBAL_CACHE_LIMIT:
            store.clear()
        store[id(term)] = (term, compiled)
        fresh = True
        if compiled is not None:
            STATS.compiled += 1
    if compiled is None:
        STATS.fallbacks += 1
        return evaluate(term, env)
    if not fresh:
        STATS.cache_hits += 1
    return compiled(env)


def clear_caches() -> None:
    """Drop the module-global compiled-term cache (tests)."""
    _GLOBAL_CACHE.clear()
