"""The abstract-data-type substrate.

TROLL object specifications are written over "an arbitrary abstract data
type" (Section 3 of the paper): object identities are values of an
abstract data type, attributes take data values, and event parameters are
data values.  This package provides that substrate:

* :mod:`repro.datatypes.sorts` -- the sort (type) system: base sorts and
  the parametrized constructors ``set``, ``list``, ``map`` and ``tuple``
  used in the paper's listings, plus identity sorts ``|C|`` for object
  surrogates.
* :mod:`repro.datatypes.values` -- immutable, sort-tagged runtime values.
* :mod:`repro.datatypes.operations` -- the built-in operation signatures
  (``insert``, ``remove``, ``in``, arithmetic, comparisons, ...) together
  with their implementations.
* :mod:`repro.datatypes.terms` -- the data-valued term language shared by
  valuation rules, permissions, constraints and derivation rules, and
* :mod:`repro.datatypes.evaluator` -- term evaluation against an
  :class:`~repro.datatypes.evaluator.Environment`.
"""

from repro.datatypes.sorts import (
    ANY,
    BOOL,
    CHAR,
    DATE,
    INTEGER,
    MONEY,
    NAT,
    REAL,
    STRING,
    IdSort,
    ListSort,
    MapSort,
    SetSort,
    Sort,
    TupleSort,
    parse_sort_name,
)
from repro.datatypes.values import (
    Value,
    boolean,
    date,
    false,
    identity,
    integer,
    list_value,
    map_value,
    money,
    real,
    set_value,
    string,
    true,
    tuple_value,
)
from repro.datatypes.operations import BUILTIN_OPERATIONS, Operation, apply_operation
from repro.datatypes.terms import (
    Apply,
    AttributeAccess,
    ComponentAccess,
    Exists,
    Forall,
    Lit,
    QueryOp,
    SelfExpr,
    Term,
    TupleCons,
    Var,
)
from repro.datatypes.evaluator import Environment, MapEnvironment, evaluate

__all__ = [
    "ANY",
    "BOOL",
    "BUILTIN_OPERATIONS",
    "CHAR",
    "DATE",
    "INTEGER",
    "MONEY",
    "NAT",
    "REAL",
    "STRING",
    "Apply",
    "AttributeAccess",
    "ComponentAccess",
    "Environment",
    "Exists",
    "Forall",
    "IdSort",
    "ListSort",
    "Lit",
    "MapEnvironment",
    "MapSort",
    "Operation",
    "QueryOp",
    "SelfExpr",
    "SetSort",
    "Sort",
    "Term",
    "TupleCons",
    "TupleSort",
    "Value",
    "Var",
    "apply_operation",
    "boolean",
    "date",
    "evaluate",
    "false",
    "identity",
    "integer",
    "list_value",
    "map_value",
    "money",
    "parse_sort_name",
    "real",
    "set_value",
    "string",
    "true",
    "tuple_value",
]
