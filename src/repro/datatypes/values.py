"""Immutable, sort-tagged runtime values.

Every datum flowing through the animator -- attribute observations, event
parameters, identities -- is a :class:`Value`: a payload tagged with its
:class:`~repro.datatypes.sorts.Sort`.  Values are immutable and hashable
so that they can be elements of sets and keys of maps, which the paper's
``set``/``map`` data-type constructors require.

Construction helpers (:func:`integer`, :func:`string`, :func:`set_value`,
:func:`tuple_value`, ...) are the intended public API; they normalise
payloads into hashable canonical forms (``frozenset`` for sets, tuples
for lists, sorted pair-tuples for maps).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Tuple

from repro.datatypes.sorts import (
    ANY,
    BOOL,
    DATE,
    INTEGER,
    MONEY,
    NAT,
    REAL,
    STRING,
    IdSort,
    ListSort,
    MapSort,
    SetSort,
    Sort,
    TupleSort,
    is_numeric,
)


@dataclass(frozen=True)
class Value:
    """A sort-tagged immutable datum.

    Attributes:
        sort: The value's sort.
        payload: The canonical Python representation (see module docs).
    """

    sort: Sort
    payload: Any

    def __str__(self) -> str:
        return format_value(self)

    def __bool__(self) -> bool:
        """Truthiness of a boolean value; other sorts raise."""
        if self.sort.is_compatible_with(BOOL):
            return bool(self.payload)
        raise TypeError(f"value of sort {self.sort} is not a boolean")

    # Ordering delegates to payloads; mixed-sort comparison orders by sort
    # name so that sorted() over heterogeneous sets is deterministic.
    def __lt__(self, other: "Value") -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        try:
            if is_numeric(self.sort) and is_numeric(other.sort):
                return self.payload < other.payload
            if self.sort == other.sort:
                return self.payload < other.payload
        except TypeError:
            pass
        return (str(self.sort), str(self.payload)) < (str(other.sort), str(other.payload))

    def __eq__(self, other: object) -> bool:
        """Structural value equality.

        Numeric values compare across the numeric tower; collection and
        tuple values compare by *payload* (element/field sorts are a
        static-checking artifact -- the empty set equals the empty set
        whatever element sort was inferred, matching the paper's
        ``Emps = {}`` tests).  Scalars and identities compare
        sort-nominally.
        """
        if not isinstance(other, Value):
            return NotImplemented
        if is_numeric(self.sort) and is_numeric(other.sort):
            return self.payload == other.payload
        if isinstance(self.sort, (SetSort, ListSort, MapSort, TupleSort)):
            return (
                type(self.sort) is type(other.sort)
                and self.payload == other.payload
            )
        return self.sort == other.sort and self.payload == other.payload

    def __hash__(self) -> int:
        if is_numeric(self.sort):
            return hash(("__numeric__", self.payload))
        if isinstance(self.sort, (SetSort, ListSort, MapSort, TupleSort)):
            return hash((self.sort.name, self.payload))
        return hash((self.sort, self.payload))


#: Shared singletons for the boolean constants.
TRUE = Value(BOOL, True)
FALSE = Value(BOOL, False)


def true() -> Value:
    return TRUE


def false() -> Value:
    return FALSE


def boolean(flag: bool) -> Value:
    return TRUE if flag else FALSE


def natural(n: int) -> Value:
    if n < 0:
        raise ValueError(f"nat value must be non-negative, got {n}")
    return Value(NAT, int(n))


def integer(n: int) -> Value:
    return Value(INTEGER, int(n))


def real(x: float) -> Value:
    return Value(REAL, float(x))


def money(amount: float) -> Value:
    """A money amount.

    Money is stored as a float of currency units; the paper never relies
    on sub-cent precision, and comparisons in its listings are plain
    numeric comparisons.
    """
    return Value(MONEY, float(amount))


def string(text: str) -> Value:
    return Value(STRING, str(text))


def date(year: int, month: int, day: int) -> Value:
    """A calendar date; validated via :mod:`datetime`."""
    _dt.date(year, month, day)
    return Value(DATE, (int(year), int(month), int(day)))


def identity(class_name: str, key: Any) -> Value:
    """An object identity (surrogate) for class ``class_name``.

    ``key`` is any hashable datum distinguishing this identity -- for
    classes with declared identification attributes it is the tuple of
    those attribute values.
    """
    if isinstance(key, Value):
        key = key.payload
    if isinstance(key, list):
        key = tuple(key)
    return Value(IdSort(name=f"|{class_name}|", class_name=class_name), key)


def _common_sort(items) -> Sort:
    """The element sort shared by all items, or ``ANY`` for mixed or
    empty collections (deterministic regardless of iteration order)."""
    sorts = {item.sort for item in items}
    if len(sorts) == 1:
        return next(iter(sorts))
    return ANY


def set_value(items: Iterable[Value], element_sort: Optional[Sort] = None) -> Value:
    """A finite set over ``element_sort`` (inferred if omitted)."""
    frozen = frozenset(items)
    if element_sort is None:
        element_sort = _common_sort(frozen)
    return Value(SetSort(name="set", element=element_sort), frozen)


def empty_set(element_sort: Sort = ANY) -> Value:
    return set_value((), element_sort)


def list_value(items: Iterable[Value], element_sort: Optional[Sort] = None) -> Value:
    """A finite sequence over ``element_sort`` (inferred if omitted)."""
    tup = tuple(items)
    if element_sort is None:
        element_sort = _common_sort(tup)
    return Value(ListSort(name="list", element=element_sort), tup)


def empty_list(element_sort: Sort = ANY) -> Value:
    return list_value((), element_sort)


def map_value(
    entries: Mapping[Value, Value],
    key_sort: Optional[Sort] = None,
    value_sort: Optional[Sort] = None,
) -> Value:
    """A finite map, canonicalised to a sorted tuple of pairs."""
    pairs = tuple(sorted(entries.items(), key=lambda kv: kv[0]))
    if key_sort is None:
        key_sort = _common_sort([k for k, _ in pairs])
    if value_sort is None:
        value_sort = _common_sort([v for _, v in pairs])
    return Value(MapSort(name="map", key=key_sort, value=value_sort), pairs)


def tuple_value(fields: Mapping[str, Value]) -> Value:
    """A record value with named fields, in declaration order."""
    items: Tuple[Tuple[str, Value], ...] = tuple(fields.items())
    sort = TupleSort(name="tuple", fields=tuple((n, v.sort) for n, v in items))
    return Value(sort, items)


def tuple_field(value: Value, name: str) -> Value:
    """Project a field out of a tuple value."""
    if not isinstance(value.sort, TupleSort):
        raise TypeError(f"cannot project field {name!r} from sort {value.sort}")
    for n, v in value.payload:
        if n == name:
            return v
    raise KeyError(f"tuple has no field {name!r} (has {value.sort.field_names})")


def from_python(obj: Any) -> Value:
    """Best-effort conversion of a plain Python object to a :class:`Value`.

    Convenience for tests and examples; library code constructs values
    explicitly.
    """
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, bool):
        return boolean(obj)
    if isinstance(obj, int):
        return integer(obj)
    if isinstance(obj, float):
        return real(obj)
    if isinstance(obj, str):
        return string(obj)
    if isinstance(obj, _dt.date):
        return date(obj.year, obj.month, obj.day)
    if isinstance(obj, (set, frozenset)):
        return set_value(from_python(x) for x in obj)
    if isinstance(obj, (list, tuple)):
        return list_value(from_python(x) for x in obj)
    if isinstance(obj, dict):
        return tuple_value({str(k): from_python(v) for k, v in obj.items()})
    raise TypeError(f"cannot convert {type(obj).__name__} to a Value")


def to_python(value: Value) -> Any:
    """Convert a :class:`Value` back to a plain Python object."""
    sort = value.sort
    if isinstance(sort, SetSort):
        return {to_python(v) for v in value.payload}
    if isinstance(sort, ListSort):
        return [to_python(v) for v in value.payload]
    if isinstance(sort, MapSort):
        return {to_python(k): to_python(v) for k, v in value.payload}
    if isinstance(sort, TupleSort):
        return {n: to_python(v) for n, v in value.payload}
    if sort == DATE:
        return _dt.date(*value.payload)
    return value.payload


def format_value(value: Value) -> str:
    """Render a value in TROLL-ish concrete syntax (deterministically)."""
    sort = value.sort
    if sort.is_compatible_with(BOOL) and isinstance(value.payload, bool):
        return "true" if value.payload else "false"
    if isinstance(sort, SetSort):
        inner = ", ".join(format_value(v) for v in sorted(value.payload))
        return "{" + inner + "}"
    if isinstance(sort, ListSort):
        inner = ", ".join(format_value(v) for v in value.payload)
        return "<" + inner + ">"
    if isinstance(sort, MapSort):
        inner = ", ".join(
            f"{format_value(k)} |-> {format_value(v)}" for k, v in value.payload
        )
        return "[" + inner + "]"
    if isinstance(sort, TupleSort):
        inner = ", ".join(f"{n}: {format_value(v)}" for n, v in value.payload)
        return "tuple(" + inner + ")"
    if isinstance(sort, IdSort):
        return f"{sort.class_name}({value.payload!r})"
    if sort == STRING:
        return repr(value.payload)
    if sort == DATE:
        y, m, d = value.payload
        return f"{y:04d}-{m:02d}-{d:02d}"
    return str(value.payload)
