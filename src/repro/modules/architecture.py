"""Modules, society interfaces, and module systems.

The unit of modularization "must be expressed by an arbitrary object
society"; its boundary is a *society interface* -- "structured like
usual object societies but hiding module realization details", defined
"as collections of object interfaces" (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import CheckError, RefinementError
from repro.interfaces.views import InterfaceView
from repro.refinement.checker import ConformanceReport, EventProfile, RefinementChecker
from repro.runtime.objectbase import ObjectBase, Occurrence


@dataclass(frozen=True)
class ExternalSchema:
    """A named export interface: a set of interface-class names defined
    in the module's specification, optionally *active* (events committed
    in the module are pushed to subscribers)."""

    name: str
    interfaces: Tuple[str, ...]
    active: bool = False


@dataclass(frozen=True)
class RefinementBinding:
    """An internal-schema binding: conceptual class ``abstract`` is
    realised by the implementation behind ``interface``."""

    abstract: str
    interface: str


class SocietyInterface:
    """The runtime face of one external schema: the named views opened
    over the module's object base, plus (for active schemata) event
    subscription."""

    def __init__(self, module: "Module", schema: ExternalSchema):
        self.module = module
        self.schema = schema
        self.views: Dict[str, InterfaceView] = {
            name: InterfaceView(module.system, name) for name in schema.interfaces
        }

    @property
    def name(self) -> str:
        return self.schema.name

    def view(self, interface_name: str) -> InterfaceView:
        found = self.views.get(interface_name)
        if found is None:
            raise CheckError(
                f"external schema {self.schema.name!r} of module "
                f"{self.module.name!r} does not export {interface_name!r}"
            )
        return found

    def subscribe(
        self, handler: Callable[[List[Occurrence]], None]
    ) -> Callable[[List[Occurrence]], None]:
        """Register a commit handler (active schemata only)."""
        if not self.schema.active:
            raise CheckError(
                f"external schema {self.schema.name!r} is passive; "
                "subscription needs an active society interface"
            )
        self.module.system.on_commit.append(handler)
        return handler


class Module:
    """One object-system module organised by the three-level schema
    architecture."""

    def __init__(
        self,
        name: str,
        conceptual: str,
        internal: str = "",
        bindings: Sequence[RefinementBinding] = (),
        externals: Sequence[ExternalSchema] = (),
        permission_mode: str = "incremental",
    ):
        self.name = name
        self.conceptual_text = conceptual
        self.internal_text = internal
        self.bindings = list(bindings)
        self.externals: Dict[str, ExternalSchema] = {e.name: e for e in externals}
        full_text = conceptual + "\n" + internal
        self.system = ObjectBase(full_text, permission_mode=permission_mode)
        self._validate_externals()

    def _validate_externals(self) -> None:
        for schema in self.externals.values():
            for interface_name in schema.interfaces:
                if interface_name not in self.system.checked.interfaces:
                    raise CheckError(
                        f"module {self.name!r}: external schema "
                        f"{schema.name!r} exports unknown interface "
                        f"{interface_name!r}"
                    )
        for binding in self.bindings:
            if binding.abstract not in self.system.checked.classes:
                raise CheckError(
                    f"module {self.name!r}: binding for unknown class "
                    f"{binding.abstract!r}"
                )
            if binding.interface not in self.system.checked.interfaces:
                raise CheckError(
                    f"module {self.name!r}: binding through unknown "
                    f"interface {binding.interface!r}"
                )

    def export(self, schema_name: str) -> SocietyInterface:
        """Open one of the module's external schemata."""
        schema = self.externals.get(schema_name)
        if schema is None:
            raise CheckError(
                f"module {self.name!r} has no external schema {schema_name!r}"
            )
        return SocietyInterface(self, schema)

    def verify_bindings(
        self,
        profiles_by_class: Dict[str, Sequence[EventProfile]],
        traces: int = 10,
        trace_length: int = 8,
        seed: int = 0,
    ) -> Dict[str, ConformanceReport]:
        """Check every internal-schema binding by co-simulation
        (module refinement as "formal implementation steps")."""
        reports: Dict[str, ConformanceReport] = {}
        for binding in self.bindings:
            profiles = profiles_by_class.get(binding.abstract)
            if profiles is None:
                raise RefinementError(
                    f"no event profiles supplied for {binding.abstract!r}"
                )
            checker = RefinementChecker(
                self.system, binding.abstract, binding.interface
            )
            reports[binding.abstract] = checker.random_conformance(
                profiles, traces=traces, trace_length=trace_length, seed=seed
            )
        return reports


@dataclass
class ImportedSchema:
    """A hierarchical import: ``importer`` uses ``exporter``'s external
    schema through its society interface."""

    importer: str
    exporter: str
    interface: SocietyInterface


@dataclass
class Relay:
    """A horizontal connection: occurrences of ``(class_name, event)``
    committed in the source module trigger ``handler`` (which typically
    drives events in the target module)."""

    source: str
    class_name: str
    event: str
    handler: Callable[[Occurrence], None]


class ModuleSystem:
    """A collection of modules composed hierarchically and horizontally.

    "Arbitrary systems can be built by connecting object system modules
    using society interface import" (Section 6.2).
    """

    def __init__(self) -> None:
        self.modules: Dict[str, Module] = {}
        self.imports: List[ImportedSchema] = []
        self.relays: List[Relay] = []

    def add(self, module: Module) -> Module:
        if module.name in self.modules:
            raise CheckError(f"duplicate module name {module.name!r}")
        self.modules[module.name] = module
        return module

    def module(self, name: str) -> Module:
        found = self.modules.get(name)
        if found is None:
            raise CheckError(f"unknown module {name!r}")
        return found

    # ------------------------------------------------------------------
    # Hierarchical composition
    # ------------------------------------------------------------------

    def import_schema(
        self, importer: str, exporter: str, schema_name: str
    ) -> SocietyInterface:
        """Give ``importer`` access to ``exporter``'s external schema.

        Returns the society interface; the importing module holds no
        other handle on the exporter ("the implementation of single
        modules is hidden to the outside").
        """
        self.module(importer)
        interface = self.module(exporter).export(schema_name)
        self.imports.append(
            ImportedSchema(importer=importer, exporter=exporter, interface=interface)
        )
        return interface

    # ------------------------------------------------------------------
    # Horizontal composition
    # ------------------------------------------------------------------

    def connect(
        self,
        source: str,
        class_name: str,
        event: str,
        handler: Callable[[Occurrence], None],
        via_schema: Optional[str] = None,
    ) -> Relay:
        """Relay committed ``class_name.event`` occurrences of ``source``
        to ``handler`` -- the active-society-interface mechanism behind
        e.g. the shared system clock.

        When ``via_schema`` is given, it must name an *active* external
        schema of the source module (the subscription is part of the
        module's declared communication surface).
        """
        source_module = self.module(source)
        if via_schema is not None:
            schema = source_module.externals.get(via_schema)
            if schema is None:
                raise CheckError(
                    f"module {source!r} has no external schema {via_schema!r}"
                )
            if not schema.active:
                raise CheckError(
                    f"external schema {via_schema!r} of module {source!r} is "
                    "passive; relays need an active schema"
                )

        relay = Relay(source=source, class_name=class_name, event=event, handler=handler)

        def hook(occurrences: List[Occurrence]) -> None:
            for occurrence in occurrences:
                if (
                    occurrence.instance.class_name == class_name
                    and occurrence.event == event
                ):
                    handler(occurrence)

        source_module.system.on_commit.append(hook)
        self.relays.append(relay)
        return relay
