"""Modularization: the three-level schema architecture (Section 6).

A :class:`Module` organises one object subsystem the way Figure 1
organises a database application:

* the **conceptual schema** -- the abstract TROLL specification of the
  module's object base;
* the **internal schema** -- implementation objects plus refinement
  bindings mapping conceptual classes to implementations-behind-
  interfaces (Section 5.2's formal implementation);
* several **external schemata** -- named sets of interface classes, the
  module's export interfaces ("several different export interfaces for
  one module for modelling a controlled communication of autonomous
  subsystems").

Composition:

* **hierarchical** -- a module *imports* another module's external
  schema and reads/manipulates through its views (dependent subsystems;
  control flow follows the hierarchy);
* **horizontal** -- autonomous modules *relay* events through active
  society interfaces (communicating object societies, e.g. the shared
  system clock of Section 6.1).
"""

from repro.modules.architecture import (
    ExternalSchema,
    ImportedSchema,
    Module,
    ModuleSystem,
    RefinementBinding,
    Relay,
    SocietyInterface,
)

__all__ = [
    "ExternalSchema",
    "ImportedSchema",
    "Module",
    "ModuleSystem",
    "RefinementBinding",
    "Relay",
    "SocietyInterface",
]
