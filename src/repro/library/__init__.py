"""The paper's specifications, as reusable TROLL text.

Section 6.1 calls the use of object specification libraries *syntactical
reuse*.  This package is exactly that library for the paper itself: each
constant below is a listing from the paper (Sections 4 and 5) in the
concrete syntax accepted by :mod:`repro.lang`, plus loader helpers.

The texts follow the paper verbatim up to ASCII spelling and the small
repairs the OCR'd listing obviously needs (e.g. the EMPL_IMPL derivation
rule reads ``count(project[esalary](...))`` in the paper's garbled form;
the intended unique-value extraction is ``the(project[esalary](...))``,
which is what we use -- see DESIGN.md).
"""

from repro.library.specs import (
    CAR_SPEC,
    COMPANY_SPEC,
    DEPT_SPEC,
    EMP_REL_SPEC,
    EMPL_IMPL_SPEC,
    EMPL_INTERFACE_SPEC,
    EMPLOYEE_ABSTRACT_SPEC,
    GLOBAL_INTERACTIONS_SPEC,
    LENDING_LIBRARY_SPEC,
    PERSON_MANAGER_SPEC,
    REFINEMENT_SPEC,
    SAL_EMPLOYEE2_SPEC,
    SAL_EMPLOYEE_SPEC,
    RESEARCH_EMPLOYEE_SPEC,
    WORKS_FOR_SPEC,
    FULL_COMPANY_SPEC,
    load,
)

__all__ = [
    "CAR_SPEC",
    "COMPANY_SPEC",
    "DEPT_SPEC",
    "EMP_REL_SPEC",
    "EMPL_IMPL_SPEC",
    "EMPL_INTERFACE_SPEC",
    "EMPLOYEE_ABSTRACT_SPEC",
    "FULL_COMPANY_SPEC",
    "GLOBAL_INTERACTIONS_SPEC",
    "LENDING_LIBRARY_SPEC",
    "PERSON_MANAGER_SPEC",
    "REFINEMENT_SPEC",
    "RESEARCH_EMPLOYEE_SPEC",
    "SAL_EMPLOYEE2_SPEC",
    "SAL_EMPLOYEE_SPEC",
    "WORKS_FOR_SPEC",
    "load",
]
