"""The paper's TROLL listings (Sections 4 and 5) as specification text.

Repairs applied to the OCR'd listings, each preserving the described
behaviour (see DESIGN.md):

* ``DEPT``: an ``establishment(d) employees = {};`` valuation rule
  initialises the member set (the paper's ``insert(P, employees)`` needs
  a defined initial value), and a ``{ P in employees } new_manager(P);``
  permission makes the promotion example meaningful.
* ``PERSON`` is only sketched in the paper ("attributes ... events ...
  become_manager"); we flesh it out with the attributes its interfaces
  observe (``Name``, ``Salary``, ``Dept``, ``IncomeInYear``) and the
  events they call (``ChangeSalary``).
* ``emp_rel``: the paper's guarded delete rule binds ``s`` only inside
  its guard pattern; we express the same effect with the query algebra
  (``select[not(...)](Emps)``).  The transaction call the paper writes
  for ``ChangeSalary`` is attached to the declared ``UpdateSalary``
  event (the listing declares ``UpdateSalary`` but then calls an
  undeclared ``ChangeSalary``; the surrounding prose makes clear they
  are the same operation).  The key-constraint permission on
  ``InsertEmp`` implements "under the requirement to satisfy the key
  constraints".
* ``EMPL_IMPL``: the derivation rule's garbled ``count(project|salary)
  (select|...|employees))`` is read as the unique-value extraction
  ``the(project[esalary](select[...](employees.Emps)))``.
"""

from repro.lang.parser import parse_specification


CAR_SPEC = """
object class CAR
  identification
    Registration: string;
  template
    attributes
      Model: string;
    events
      birth register(string);
      death scrap;
    valuation
      variables m: string;
      register(m) Model = m;
end object class CAR;
"""


PERSON_MANAGER_SPEC = """
object class PERSON
  identification
    Name: string;
    BirthDate: date;
  template
    data types date, money, string;
    attributes
      Dept: string;
      Salary: money;
      IsManager: bool;
      derived IncomeInYear(integer): money;
    events
      birth hire_into(string, money);
      death die;
      ChangeSalary(money);
      ChangeDept(string);
      become_manager;
      retire_manager;
    valuation
      variables d: string; s: money;
      hire_into(d, s) Dept = d;
      hire_into(d, s) Salary = s;
      hire_into(d, s) IsManager = false;
      ChangeSalary(s) Salary = s;
      ChangeDept(d) Dept = d;
      become_manager IsManager = true;
      retire_manager IsManager = false;
    permissions
      { not(IsManager) } become_manager;
      { IsManager } retire_manager;
    derivation rules
      IncomeInYear(y) = Salary * 13.5;
end object class PERSON;

object class MANAGER
  view of PERSON;
  template
    attributes
      OfficialCar : |CAR|;
    events
      birth PERSON.become_manager;
      death PERSON.retire_manager;
      get_car(CAR);
    valuation
      variables C: CAR;
      get_car(C) OfficialCar = C;
    constraints
      static Salary >= 5000;
end object class MANAGER;
"""


DEPT_SPEC = """
object class DEPT
  identification
    id: string;
  data types date, PERSON, set(PERSON);
  template
    attributes
      est_date: date;
      manager: PERSON;
      employees: set(PERSON);
    events
      birth establishment(date);
      death closure;
      new_manager(PERSON); assign_official_car(CAR, PERSON);
      hire(PERSON); fire(PERSON);
    valuation
      variables P: PERSON; d: date;
      establishment(d) est_date = d;
      establishment(d) employees = {};
      new_manager(P) manager = P;
      hire(P) employees = insert(P, employees);
      fire(P) employees = remove(P, employees);
    permissions
      variables P: PERSON;
      { P in employees } new_manager(P);
      { sometime(after(hire(P))) } fire(P);
      { for all(P: PERSON : sometime(P in employees) => sometime(after(fire(P)))) } closure;
end object class DEPT;
"""


COMPANY_SPEC = """
object TheCompany
  template
    attributes
      CName: string;
    components
      depts : LIST(DEPT);
    events
      birth founded(string);
      death liquidated;
      add_dept(DEPT);
      drop_dept(DEPT);
    valuation
      variables n: string; D: DEPT;
      founded(n) CName = n;
      founded(n) depts = [];
      add_dept(D) depts = append(depts, D);
      drop_dept(D) depts = remove(depts, D);
end object TheCompany;
"""


GLOBAL_INTERACTIONS_SPEC = """
global interactions
  variables P: PERSON; D: DEPT; C: CAR;
  DEPT(D).new_manager(P) >> PERSON(P).become_manager;
  DEPT(D).assign_official_car(C, P) >> MANAGER(P).get_car(C);
"""


SAL_EMPLOYEE_SPEC = """
interface class SAL_EMPLOYEE
  encapsulating PERSON
  attributes
    Name: string;
    IncomeInYear(integer): money;
    Salary: money;
  events
    ChangeSalary(money);
end interface class SAL_EMPLOYEE;
"""


SAL_EMPLOYEE2_SPEC = """
interface class SAL_EMPLOYEE2
  encapsulating PERSON
  attributes
    Name: string;
    derived CurrentIncomePerYear: money;
    Salary: money;
  events
    derived IncreaseSalary;
  derivation
    derivation rules
      CurrentIncomePerYear = Salary * 13.5;
    calling
      IncreaseSalary >> ChangeSalary(Salary * 1.1);
end interface class SAL_EMPLOYEE2;
"""


RESEARCH_EMPLOYEE_SPEC = """
interface class RESEARCH_EMPLOYEE
  encapsulating PERSON
  selection where SELF.Dept = 'Research';
  attributes
    Name: string;
    Salary: money;
  events
    ChangeSalary(money);
end interface class RESEARCH_EMPLOYEE;
"""


WORKS_FOR_SPEC = """
interface class WORKS_FOR
  encapsulating PERSON P, DEPT D
  selection where P.surrogate in D.employees;
  attributes
    DeptName: string;
    PersonName: string;
  derivation rules
    DeptName = D.id;
    PersonName = P.Name;
end interface class WORKS_FOR;
"""


EMPLOYEE_ABSTRACT_SPEC = """
object class EMPLOYEE
  identification
    EmpName: string;
    EmpBirth: date;
  template
    attributes
      Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      HireEmployee Salary = 0;
      IncreaseSalary(n) Salary = Salary + n;
end object class EMPLOYEE;
"""


EMP_REL_SPEC = """
object emp_rel
  template
    data types string, date, integer;
    attributes
      Emps : set(tuple(ename: string, ebirth: date, esalary: integer));
    events
      birth CreateEmpRel;
      UpdateSalary(string, date, integer);
      InsertEmp(string, date, integer);
      DeleteEmp(string, date);
      death CloseEmpRel;
    valuation
      variables n: string; b: date; s: integer;
      [CreateEmpRel] Emps = {};
      [InsertEmp(n, b, s)] Emps = insert(Emps, tuple(ename: n, ebirth: b, esalary: s));
      [DeleteEmp(n, b)] Emps = select[not(ename = n and ebirth = b)](Emps);
    permissions
      variables n: string; b: date; s: integer;
      { exists(s1: integer) in(Emps, tuple(ename: n, ebirth: b, esalary: s1)) } UpdateSalary(n, b, s);
      { not(exists(s1: integer) in(Emps, tuple(ename: n, ebirth: b, esalary: s1))) } InsertEmp(n, b, s);
      { exists(s1: integer) in(Emps, tuple(ename: n, ebirth: b, esalary: s1)) } DeleteEmp(n, b);
      { Emps = {} } CloseEmpRel;
    interaction
      variables n: string; b: date; s: integer;
      UpdateSalary(n, b, s) >> (DeleteEmp(n, b); InsertEmp(n, b, s));
end object emp_rel;
"""


EMPL_IMPL_SPEC = """
object class EMPL_IMPL
  identification
    data types date, string;
    EmpName : string;
    EmpBirth : date;
  template
    inheriting emp_rel as employees;
    attributes
      derived Salary: integer;
    events
      birth HireEmployee;
      derived IncreaseSalary(integer);
      death FireEmployee;
    constraints
    derivation rules
      Salary = the(project[esalary](select[ename = EmpName and ebirth = EmpBirth](employees.Emps)));
    interaction
      variables n: integer;
      HireEmployee >> employees.InsertEmp(self.EmpName, self.EmpBirth, 0);
      FireEmployee >> employees.DeleteEmp(self.EmpName, self.EmpBirth);
      IncreaseSalary(n) >> employees.UpdateSalary(self.EmpName, self.EmpBirth, self.Salary + n);
end object class EMPL_IMPL;
"""


EMPL_INTERFACE_SPEC = """
interface class EMPL
  encapsulating EMPL_IMPL
  attributes
    EmpName: string;
    EmpBirth: date;
    Salary: integer;
  events
    IncreaseSalary(integer);
    HireEmployee;
    FireEmployee;
end interface class EMPL;
"""


#: The complete Section 4/5.1 object society: classes, the complex
#: object, the views and the global interactions.
FULL_COMPANY_SPEC = "\n".join(
    [
        CAR_SPEC,
        PERSON_MANAGER_SPEC,
        DEPT_SPEC,
        COMPANY_SPEC,
        SAL_EMPLOYEE_SPEC,
        SAL_EMPLOYEE2_SPEC,
        RESEARCH_EMPLOYEE_SPEC,
        WORKS_FOR_SPEC,
        GLOBAL_INTERACTIONS_SPEC,
    ]
)

#: The complete Section 5.2 refinement stack: the abstract class, the
#: relation object, the implementation class and the hiding interface.
REFINEMENT_SPEC = "\n".join(
    [
        EMPLOYEE_ABSTRACT_SPEC,
        EMP_REL_SPEC,
        EMPL_IMPL_SPEC,
        EMPL_INTERFACE_SPEC,
    ]
)


def load(text: str, source: str = "<library>"):
    """Parse a library specification text into an AST document."""
    return parse_specification(text, source)


#: A second complete domain (not from the paper): a lending library.
#: It exercises the full feature surface on fresh ground -- ``initially``
#: defaults, cross-object atomicity through global interactions, state
#: permissions, static constraints, and a derived interface.
LENDING_LIBRARY_SPEC = """
object class BOOK
  identification
    Isbn: string;
  template
    attributes
      Title: string;
      OnLoan: bool initially false;
    events
      birth acquire(string);
      lend;
      return_book;
      death discard;
    valuation
      variables t: string;
      acquire(t) Title = t;
      lend OnLoan = true;
      return_book OnLoan = false;
    permissions
      { not(OnLoan) } lend;
      { OnLoan } return_book;
      { not(OnLoan) } discard;
end object class BOOK;

object class MEMBER
  identification
    MName: string;
  template
    attributes
      Borrowed: set(BOOK) initially {};
      Fines: integer initially 0;
    events
      birth join;
      borrow(BOOK);
      give_back(BOOK);
      incur_fine(integer);
      pay_fine(integer);
      death leave;
    valuation
      variables B: BOOK; k: integer;
      borrow(B) Borrowed = insert(B, Borrowed);
      give_back(B) Borrowed = remove(B, Borrowed);
      incur_fine(k) Fines = Fines + k;
      pay_fine(k) Fines = Fines - k;
    permissions
      variables B: BOOK; k: integer;
      { count(Borrowed) < 3 } borrow(B);
      { B in Borrowed } give_back(B);
      { k <= Fines } pay_fine(k);
      { Borrowed = {} and Fines = 0 } leave;
    constraints
      static Fines >= 0;
      static count(Borrowed) <= 3;
end object class MEMBER;

interface class CIRCULATION
  encapsulating MEMBER
  attributes
    MName: string;
    derived LoanCount: integer;
    derived HasFines: bool;
  events
    borrow(BOOK);
    give_back(BOOK);
  derivation rules
    LoanCount = count(Borrowed);
    HasFines = Fines > 0;
end interface class CIRCULATION;

global interactions
  variables M: MEMBER; B: BOOK;
  MEMBER(M).borrow(B) >> BOOK(B).lend;
  MEMBER(M).give_back(B) >> BOOK(B).return_book;
"""
