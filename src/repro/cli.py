"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``dot FILE...``    -- emit a Graphviz class diagram of the checked
  specification (classes, view-of, components, interfaces).
* ``check FILE...``  -- parse and statically check specification files,
  printing diagnostics; exit status 1 on errors.
* ``format FILE``    -- parse and pretty-print (normalise) a
  specification to stdout.
* ``info FILE...``   -- print the inventory (classes, objects,
  interfaces, global interaction blocks) of the checked specification.
* ``library NAME``   -- print a specification from the bundled paper
  library (``library list`` enumerates the names).
* ``stats [SCRIPT]`` -- animate an example script (default: the built-in
  company demo) under metrics instrumentation and print the counter /
  phase-timing table (including the ``probe_cache.*`` counters of the
  epoch-memoized enabledness engine, docs/PERFORMANCE.md).
* ``trace [SCRIPT]`` -- same, but record span trees and print the last
  synchronization sets as nested traces (``--jsonl`` dumps all of them).
  ``trace --distributed [REQ]`` instead runs the built-in workload on a
  sharded server with end-to-end tracing and renders the *merged*
  cross-process request tree(s) -- all of them verified for complete
  coordinator-dispatch/shard coverage.
* ``replay [SCRIPT]`` -- animate under the event journal, then replay
  each journal against the same compiled spec and verify the replayed
  state is identical to the live base (``--save`` dumps the journals).
* ``why TARGET [SCRIPT]`` -- provenance query: walk the journal back to
  the occurrence (and event-calling chain) that wrote an attribute,
  e.g. ``repro why "DEPT('Research').manager"``.
* ``export [SCRIPT]`` -- metrics + journal gauges in Prometheus text
  exposition format (or ``--format json``).  ``export --fleet`` runs the
  sharded workload and exports the merged fleet view instead: per-shard
  gauges, cache hit rates, latency quantiles, and the aggregate
  histograms merged bucket-by-bucket across every process.
* ``top`` -- a refreshing per-shard utilization/latency table over a
  live sharded community driving the built-in workload.
* ``workload --trace`` -- the sharded throughput workload with every
  request traced end to end and every merged trace verified.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.diagnostics import TrollError
from repro.lang import check_specification, parse_specification
from repro.lang.printer import print_specification


def _read_sources(paths: List[str]) -> str:
    chunks = []
    for path in paths:
        if path == "-":
            chunks.append(sys.stdin.read())
        else:
            with open(path, "r", encoding="utf-8") as handle:
                chunks.append(handle.read())
    return "\n".join(chunks)


def _add_storage_flags(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument(
        "--storage", metavar="SPEC", default=None,
        help="instance storage backend: 'memory' (default), "
        "'paged[:DIR]' or 'sqlite[:FILE]' -- disk backends keep only "
        "a bounded hot set of instances resident",
    )
    parser.add_argument(
        "--hot-set", type=int, default=None, dest="hot_set",
        help="LRU hot-set capacity for disk-resident storage "
        "(default: 4096)",
    )
    parser.add_argument(
        "--no-txn-compile", action="store_true", dest="no_txn_compile",
        help="run occurrences through the generic dry-transaction "
        "pipeline instead of fused per-event transaction closures "
        "(the interpreted oracle; same as REPRO_TXN_COMPILE=0)",
    )


def _storage_environment(args: argparse.Namespace):
    """Context manager exporting the storage and compile-mode flags as
    the environment defaults (``REPRO_STORAGE`` / ``REPRO_STORAGE_HOT``
    / ``REPRO_TXN_COMPILE``) that object bases constructed by an
    animated script fall back to."""
    import contextlib
    import os

    @contextlib.contextmanager
    def _apply():
        saved = {}
        updates = {}
        if getattr(args, "storage", None):
            updates["REPRO_STORAGE"] = args.storage
        if getattr(args, "hot_set", None):
            updates["REPRO_STORAGE_HOT"] = str(args.hot_set)
        if getattr(args, "no_txn_compile", False):
            updates["REPRO_TXN_COMPILE"] = "0"
        for key, value in updates.items():
            saved[key] = os.environ.get(key)
            os.environ[key] = value
        try:
            yield
        finally:
            for key, previous in saved.items():
                if previous is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = previous

    return _apply()


def _cmd_check(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    for diagnostic in checked.diagnostics:
        print(diagnostic)
    errors = len(checked.diagnostics.errors)
    warnings = len(checked.diagnostics.warnings)
    print(f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


def _cmd_format(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    sys.stdout.write(print_specification(spec))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    for name, info in sorted(checked.classes.items()):
        kind = "object" if info.kind == "object" else "object class"
        base = f" (view of {info.base})" if info.base else ""
        print(f"{kind} {name}{base}")
        print(f"  attributes: {', '.join(sorted(info.attributes)) or '-'}")
        print(f"  events:     {', '.join(sorted(info.all_events())) or '-'}")
        if info.components:
            print(f"  components: {', '.join(sorted(info.components))}")
    for name, interface in sorted(checked.interfaces.items()):
        bases = ", ".join(
            f"{cls} {alias}" if alias != cls else cls
            for alias, cls in interface.encapsulating.items()
        )
        print(f"interface class {name} encapsulating {bases}")
        print(f"  attributes: {', '.join(sorted(interface.attributes)) or '-'}")
        print(f"  events:     {', '.join(sorted(interface.events)) or '-'}")
    blocks = len(checked.spec.global_interactions)
    if blocks:
        rules = sum(len(b.rules) for b in checked.spec.global_interactions)
        print(f"global interactions: {rules} rule(s) in {blocks} block(s)")
    if checked.diagnostics.has_errors():
        print(f"({len(checked.diagnostics.errors)} check error(s) -- run 'check')")
        return 1
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.viz import specification_to_dot

    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    checked.raise_if_errors()
    sys.stdout.write(specification_to_dot(checked))
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    import repro.library as library

    names = [n for n in library.__all__ if n.endswith("_SPEC")]
    if args.name == "list":
        for name in names:
            print(name)
        return 0
    if args.name not in names:
        print(f"unknown library spec {args.name!r}; try 'library list'",
              file=sys.stderr)
        return 1
    sys.stdout.write(getattr(library, args.name))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.observability.runner import run_instrumented

    # Scripts build their own object bases; the storage flags reach
    # them through the environment defaults ObjectBase falls back to.
    with _storage_environment(args):
        obs = run_instrumented(
            args.script, tracing=False, capture_output=not args.verbose
        )
    if args.json:
        print(json.dumps(obs.metrics.snapshot(), indent=2))
    else:
        source = args.script or "built-in company demo"
        print(f"telemetry for: {source}")
        print()
        print(obs.metrics.render_table())
    return 0


def _cmd_trace_distributed(args: argparse.Namespace) -> int:
    from repro.distributed.workload import run_sharded
    from repro.observability.tracer import render_span

    result = run_sharded(
        args.shards,
        counters=args.counters,
        ops=args.ops,
        trace=True,
        verify_traces=True,
    )
    traces = result["traces"]
    if not traces:
        print("no merged request traces captured", file=sys.stderr)
        return 1
    wanted = args.distributed
    if wanted and wanted != "last":
        selected = [t for t in traces if t.attributes.get("tid") == wanted]
        if not selected:
            print(
                f"no merged trace with id {wanted!r} "
                f"(captured t1..t{len(traces)})",
                file=sys.stderr,
            )
            return 1
    else:
        selected = traces[-args.limit:] if args.limit else traces
    print(
        f"distributed trace: showing {len(selected)} of {len(traces)} "
        f"merged request tree(s) over {args.shards} shard(s)"
    )
    for root in selected:
        print()
        print(render_span(root))
    problems = result["trace_problems"]
    if problems:
        print(f"\n{len(problems)} trace(s) FAILED merge verification:")
        for tid, issues in sorted(problems.items()):
            for issue in issues:
                print(f"  {tid}: {issue}")
        return 1
    print(f"\nall {len(traces)} merged trace(s) verified complete")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import contextlib

    from repro.observability.runner import run_instrumented

    if args.distributed is not None:
        return _cmd_trace_distributed(args)
    from repro.observability.tracer import (
        JSONLSink,
        RingBufferSink,
        render_span,
    )

    ring = RingBufferSink(capacity=max(args.limit, 256))
    sinks = [ring]
    with contextlib.ExitStack() as stack:
        if args.jsonl:
            sinks.append(stack.enter_context(JSONLSink(args.jsonl)))
        run_instrumented(
            args.script, tracing=True, sinks=sinks,
            capture_output=not args.verbose,
        )
    # Permission probes also produce root spans ("occurrence" roots);
    # the trace view shows the atomic units driven to commit/rollback.
    roots = [span for span in ring.spans if span.name == "sync_set"]
    shown = roots[-args.limit:] if args.limit else roots
    source = args.script or "built-in company demo"
    print(
        f"trace for: {source} -- showing {len(shown)} of "
        f"{len(roots)} synchronization set(s)"
    )
    for span in shown:
        print()
        print(render_span(span))
    if args.jsonl:
        print(f"\n(all {len(ring.spans)} root spans written to {args.jsonl})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.observability.journal import verify_replay
    from repro.observability.runner import run_with_journal

    _, sessions = run_with_journal(args.script, capture_output=not args.verbose)
    genesis = [
        (system, journal)
        for system, journal in sessions
        if journal.records and journal.origin == "genesis"
    ]
    source = args.script or "built-in company demo"
    print(
        f"replay for: {source} -- {len(genesis)} journaled object base(s) "
        f"({len(sessions)} captured)"
    )
    failures = 0
    for index, (system, journal) in enumerate(genesis):
        diffs = verify_replay(journal, system)
        commits = len(journal.commits())
        rollbacks = len(journal.rollbacks())
        status = "identical" if not diffs else f"{len(diffs)} difference(s)"
        print(
            f"  base {index}: {commits} committed set(s), "
            f"{rollbacks} tombstone(s) -> replayed state {status}"
        )
        for diff in diffs[:10]:
            print(f"    {diff}")
        if diffs:
            failures += 1
    if args.save:
        for index, (_, journal) in enumerate(genesis):
            path = args.save if len(genesis) == 1 else f"{args.save}.{index}"
            journal.write_jsonl(path)
            print(f"  journal of base {index} written to {path}")
    return 1 if failures else 0


def _parse_why_target(target: str):
    """``CLASS(KEY).attribute`` -> (class, key, attribute); KEY is a
    Python literal (quoted strings, tuples for composite identities)."""
    import ast as python_ast
    import re

    match = re.match(r"^\s*(\w+)\((.*)\)\.(\w+)\s*$", target)
    if match is None:
        raise ValueError(
            f"cannot parse {target!r}; expected CLASS(KEY).attribute, "
            "e.g. \"DEPT('Research').manager\""
        )
    class_name, key_text, attribute = match.groups()
    key_text = key_text.strip()
    if not key_text:
        key = class_name  # single objects use their name as key
    else:
        try:
            key = python_ast.literal_eval(key_text)
        except (ValueError, SyntaxError):
            key = key_text  # bare identifier, treat as string key
    return class_name, key, attribute


def _cmd_why(args: argparse.Namespace) -> int:
    from repro.observability.provenance import explain, render_provenance
    from repro.observability.runner import run_with_journal

    try:
        class_name, key, attribute = _parse_why_target(args.target)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _, sessions = run_with_journal(args.script, capture_output=not args.verbose)
    source = args.script or "built-in company demo"
    answers = 0
    for system, journal in sessions:
        provenance = explain(journal, class_name, key, attribute)
        if provenance is not None:
            print(f"provenance in: {source}")
            print(render_provenance(provenance))
            answers += 1
    if not answers:
        print(
            f"no journaled write of {class_name}({key!r}).{attribute} "
            f"found in {source}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import json

    from repro.observability.export import render_json, render_prometheus
    from repro.observability.runner import run_with_journal

    if args.fleet:
        from repro.distributed.workload import run_sharded
        from repro.observability.export import (
            render_fleet_json,
            render_fleet_prometheus,
        )

        result = run_sharded(
            args.shards,
            counters=args.counters,
            ops=args.ops,
            observe=True,
            export=True,
        )
        if args.format == "json":
            text = json.dumps(render_fleet_json(result["export"]), indent=2) + "\n"
        else:
            text = render_fleet_prometheus(result["export"])
    else:
        obs, sessions = run_with_journal(
            args.script, capture_output=not args.verbose
        )
        if args.format == "json":
            text = json.dumps(render_json(obs.metrics, sessions), indent=2) + "\n"
        else:
            text = render_prometheus(obs.metrics, sessions)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} export to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _parse_placement(pins: Optional[List[str]]) -> Optional[dict]:
    placement = {}
    for pin in pins or []:
        name, sep, shard = pin.partition("=")
        if not sep or not shard.lstrip("-").isdigit():
            raise ValueError(
                f"bad --pin {pin!r}; expected CLASS=SHARD (e.g. BOOK=1)"
            )
        placement[name] = int(shard)
    return placement or None


def _serve_decode_key(key):
    """JSON-lines identity payloads: lists encode composite keys."""
    return tuple(key) if isinstance(key, list) else key


def _serve_decode_arg(arg):
    """Event arguments: sort-tagged objects pass through the value
    coding (so identities are expressible as {"k": "id", ...}); plain
    scalars coerce like the in-process API."""
    from repro.runtime.persistence import value_from_json

    if isinstance(arg, dict) and "k" in arg:
        return value_from_json(arg)
    if isinstance(arg, list):
        return tuple(arg)
    return arg


def _serve_dispatch(community, request: dict) -> dict:
    from repro.runtime.persistence import value_to_json

    op = request.get("op")
    class_name = request.get("class")
    args = [_serve_decode_arg(a) for a in request.get("args") or []]
    if op == "create":
        identification = {
            name: _serve_decode_arg(v)
            for name, v in (request.get("identification") or {}).items()
        }
        key = community.create(
            class_name, identification or None, request.get("event"), args
        )
        return {"ok": True, "key": key if not isinstance(key, tuple) else list(key)}
    if op == "occur":
        community.occur(
            class_name, _serve_decode_key(request.get("key")),
            request.get("event"), args,
        )
        return {"ok": True}
    if op == "get":
        value = community.get(
            class_name, _serve_decode_key(request.get("key")),
            request.get("attribute"), args,
        )
        return {"ok": True, "value": value_to_json(value)}
    if op == "is_permitted":
        permitted = community.is_permitted(
            class_name, _serve_decode_key(request.get("key")),
            request.get("event"), args,
        )
        return {"ok": True, "permitted": permitted}
    if op == "step":
        fired = community.step()
        if fired is None:
            return {"ok": True, "fired": None}
        fired_class, key, event = fired
        return {
            "ok": True,
            "fired": {
                "class": fired_class,
                "key": key if not isinstance(key, tuple) else list(key),
                "event": event,
            },
        }
    if op == "export":
        return {"ok": True, "export": community.merged_export()}
    if op == "dump":
        return {"ok": True, "state": community.merged_state()}
    return {"ok": False, "error": "WireError", "message": f"unknown op {op!r}"}


async def _serve_dispatch_async(community, request: dict) -> dict:
    """The async twin of :func:`_serve_dispatch` (same JSON-lines ops
    against an :class:`~repro.distributed.aio.AsyncShardedCommunity`)."""
    from repro.runtime.persistence import value_to_json

    op = request.get("op")
    class_name = request.get("class")
    args = [_serve_decode_arg(a) for a in request.get("args") or []]
    if op == "create":
        identification = {
            name: _serve_decode_arg(v)
            for name, v in (request.get("identification") or {}).items()
        }
        key = await community.create(
            class_name, identification or None, request.get("event"), args
        )
        return {"ok": True, "key": key if not isinstance(key, tuple) else list(key)}
    if op == "occur":
        await community.occur(
            class_name, _serve_decode_key(request.get("key")),
            request.get("event"), args,
        )
        return {"ok": True}
    if op == "get":
        value = await community.get(
            class_name, _serve_decode_key(request.get("key")),
            request.get("attribute"), args,
        )
        return {"ok": True, "value": value_to_json(value)}
    if op == "is_permitted":
        permitted = await community.is_permitted(
            class_name, _serve_decode_key(request.get("key")),
            request.get("event"), args,
        )
        return {"ok": True, "permitted": permitted}
    if op == "step":
        fired = await community.step()
        if fired is None:
            return {"ok": True, "fired": None}
        fired_class, key, event = fired
        return {
            "ok": True,
            "fired": {
                "class": fired_class,
                "key": key if not isinstance(key, tuple) else list(key),
                "event": event,
            },
        }
    if op == "export":
        return {"ok": True, "export": await community.merged_export()}
    if op == "dump":
        return {"ok": True, "state": await community.merged_state()}
    return {"ok": False, "error": "WireError", "message": f"unknown op {op!r}"}


def _serve_tcp(args: argparse.Namespace, text: str, placement) -> int:
    """``repro serve --port``: a JSON-lines TCP server over the async
    pipelined community -- many clients at once, each line one request,
    requests from all clients interleaved in flight."""
    import asyncio
    import json

    from repro.distributed.aio import AsyncShardedCommunity

    async def main() -> int:
        async with AsyncShardedCommunity(
            text,
            shards=args.shards,
            placement=placement,
            spool_dir=args.spool_dir,
            storage=args.storage,
            hot_set=args.hot_set,
            txn_compile=False if args.no_txn_compile else None,
        ) as community:
            stop = asyncio.Event()

            async def handle_client(reader, writer):
                try:
                    while True:
                        try:
                            line = await reader.readline()
                        except asyncio.CancelledError:
                            # server shutdown with this client still
                            # connected -- close quietly
                            break
                        if not line:
                            break
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            request = json.loads(line)
                        except json.JSONDecodeError as error:
                            reply = {
                                "ok": False,
                                "error": "WireError",
                                "message": str(error),
                            }
                        else:
                            if request.get("op") in ("quit", "shutdown"):
                                reply = {"ok": True, "status": "bye"}
                                writer.write(
                                    (json.dumps(reply) + "\n").encode("utf-8")
                                )
                                await writer.drain()
                                if request.get("op") == "shutdown":
                                    stop.set()
                                break
                            try:
                                reply = await _serve_dispatch_async(
                                    community, request
                                )
                            except TrollError as error:
                                reply = {
                                    "ok": False,
                                    "error": type(error).__name__,
                                    "message": str(error),
                                }
                        writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                        await writer.drain()
                finally:
                    try:
                        writer.close()
                    except Exception:
                        pass

            server = await asyncio.start_server(
                handle_client, host="127.0.0.1", port=args.port
            )
            port = server.sockets[0].getsockname()[1]
            print(
                json.dumps(
                    {
                        "ok": True,
                        "serving": True,
                        "shards": args.shards,
                        "port": port,
                        "pipelined": True,
                    }
                ),
                flush=True,
            )
            async with server:
                await stop.wait()
        return 0

    return asyncio.run(main())


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.distributed import ShardedCommunity

    text = _read_sources(args.files)
    try:
        placement = _parse_placement(args.pin)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.port is not None:
        return _serve_tcp(args, text, placement)
    with ShardedCommunity(
        text,
        shards=args.shards,
        placement=placement,
        spool_dir=args.spool_dir,
        storage=args.storage,
        hot_set=args.hot_set,
        txn_compile=False if args.no_txn_compile else None,
    ) as community:
        print(
            json.dumps({"ok": True, "serving": True, "shards": args.shards}),
            flush=True,
        )
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                reply = {"ok": False, "error": "WireError", "message": str(error)}
                print(json.dumps(reply), flush=True)
                continue
            if request.get("op") in ("quit", "shutdown"):
                print(json.dumps({"ok": True, "status": "bye"}), flush=True)
                break
            try:
                reply = _serve_dispatch(community, request)
            except TrollError as error:
                reply = {
                    "ok": False,
                    "error": type(error).__name__,
                    "message": str(error),
                }
            print(json.dumps(reply), flush=True)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as time_mod

    from repro.distributed.coordinator import ShardedCommunity
    from repro.distributed.workload import COUNTER_SPEC
    from repro.observability.metrics import MetricsRegistry

    with ShardedCommunity(
        COUNTER_SPEC, shards=args.shards, observe=True
    ) as community:
        for index in range(args.counters):
            community.create("COUNTER", {"IdNo": index})
        previous = {}
        ops_driven = 0
        for frame in range(args.frames):
            start = time_mod.perf_counter()
            for _ in range(args.ops_per_frame):
                community.occur("COUNTER", ops_driven % args.counters, "bump")
                ops_driven += 1
            elapsed = time_mod.perf_counter() - start
            export = community.merged_export()
            rows = []
            for shard in export["shards"]:
                index = shard.get("shard")
                dump = shard.get("metrics_dump")
                registry = MetricsRegistry.from_dumps([dump] if dump else [])
                hist = registry.histograms.get("request")
                fsync = registry.histograms.get("phase.fsync")
                requests = shard.get("requests", 0)
                busy = hist.sum if hist is not None else 0.0
                prev_requests, prev_busy = previous.get(index, (0, 0.0))
                previous[index] = (requests, busy)
                rate = (requests - prev_requests) / elapsed if elapsed else 0.0
                util = (
                    min((busy - prev_busy) / elapsed, 1.0) if elapsed else 0.0
                )
                rows.append(
                    {
                        "shard": index,
                        "reqs": requests,
                        "rate": rate,
                        "util": util,
                        "commits": shard.get("commits", 0),
                        "rollbacks": shard.get("rollbacks", 0),
                        "journal": shard.get("journal_depth", 0),
                        "p50_ms": hist.percentile(0.5) * 1e3
                        if hist and hist.count
                        else 0.0,
                        "p95_ms": hist.percentile(0.95) * 1e3
                        if hist and hist.count
                        else 0.0,
                        "fsync95_ms": fsync.percentile(0.95) * 1e3
                        if fsync and fsync.count
                        else 0.0,
                    }
                )
            # --sort column, descending for load columns; shard index
            # ascending keeps the stable dashboard layout
            if args.sort == "shard":
                rows.sort(key=lambda row: row["shard"])
            else:
                rows.sort(
                    key=lambda row: (-row[args.sort], row["shard"])
                )
            if args.limit:
                rows = rows[: args.limit]
            coordinator = export.get("coordinator") or {}
            totals = export["totals"]
            if args.json:
                print(
                    json.dumps(
                        {
                            "frame": frame + 1,
                            "frames": args.frames,
                            "elapsed_seconds": elapsed,
                            "ops_driven": ops_driven,
                            "shards": rows,
                            "totals": totals,
                            "in_flight": coordinator.get("in_flight", 0),
                        },
                        sort_keys=True,
                    ),
                    flush=True,
                )
            else:
                if frame and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(
                    f"repro top -- frame {frame + 1}/{args.frames}: "
                    f"{args.shards} shard(s), {args.ops_per_frame} "
                    f"op(s)/frame, {elapsed:.3f}s"
                )
                print(
                    f"{'shard':>5} {'reqs':>7} {'req/s':>8} {'util%':>6} "
                    f"{'commits':>8} {'rollbk':>7} {'journal':>8} "
                    f"{'p50ms':>8} {'p95ms':>8} {'fsync95':>8}"
                )
                for row in rows:
                    print(
                        f"{row['shard']:>5} {row['reqs']:>7} "
                        f"{row['rate']:>8.0f} {row['util'] * 100:>6.1f} "
                        f"{row['commits']:>8} "
                        f"{row['rollbacks']:>7} "
                        f"{row['journal']:>8} "
                        f"{row['p50_ms']:>8.3f} {row['p95_ms']:>8.3f} "
                        f"{row['fsync95_ms']:>8.3f}"
                    )
                print(
                    f"coordinator: restarts={totals['restarts']} "
                    f"in_flight={coordinator.get('in_flight', 0)} "
                    f"spans_dropped={totals.get('spans_dropped', 0)} "
                    f"ops_driven={ops_driven}"
                )
            if frame + 1 < args.frames and args.interval:
                time_mod.sleep(args.interval)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.observability.profile import (
        render_collapsed,
        render_profile_prometheus,
        render_profile_table,
        render_speedscope,
        verify_fleet_profile,
    )

    problems: Optional[List[str]] = None
    if args.fleet:
        from repro.distributed.workload import run_sharded

        result = run_sharded(
            args.shards,
            counters=args.counters,
            ops=args.ops,
            profile=args.mode,
            cross_shard=True,
        )
        dump = result["profile"]
        print(
            f"fleet profile: {args.shards} shard(s), {args.counters} "
            f"counters, {args.ops} ops (cross-shard audited workload), "
            f"{result['seconds']:.3f}s"
        )
        problems = verify_fleet_profile(dump)
    else:
        from repro.observability.runner import run_instrumented

        obs = run_instrumented(
            args.script,
            tracing=False,
            capture_output=not args.verbose,
            profile=args.mode,
            profile_interval=args.interval,
        )
        dump = obs.profiler.dump()
    print(render_profile_table(dump, by=args.by, top=args.top))
    if args.speedscope:
        with open(args.speedscope, "w", encoding="utf-8") as handle:
            json.dump(render_speedscope(dump), handle)
        print(f"wrote speedscope profile to {args.speedscope}")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(render_collapsed(dump))
        print(f"wrote collapsed flamegraph stacks to {args.collapsed}")
    if args.prometheus:
        text = render_profile_prometheus(dump)
        if args.prometheus == "-":
            sys.stdout.write(text)
        else:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote profile metrics to {args.prometheus}")
    if problems is not None:
        if problems:
            for problem in problems:
                print(f"  incomplete: {problem}")
            return 1
        print("  every shard profiled both 2PC phases")
    return 0


def _cmd_workload_async(args: argparse.Namespace) -> int:
    """``repro workload --clients N`` (N >= 2): the async pipelined
    community with N concurrent client coroutines."""
    from repro.distributed.workload import run_async_sharded, run_oracle
    from repro.observability.export import render_shard_prometheus

    result = run_async_sharded(
        args.shards,
        counters=args.counters,
        ops=args.ops,
        clients=args.clients,
        spool_dir=args.spool_dir,
        export=True,
        trace=args.trace,
        storage=args.storage,
        hot_set=args.hot_set,
        txn_compile=False if args.no_txn_compile else None,
    )
    print(
        f"async sharded run: {args.shards} shard(s), {args.clients} "
        f"client(s), {result['counters']} counters, {result['ops']} ops"
    )
    print(f"  {result['seconds']:.3f}s -> {result['throughput']:.0f} ops/s")
    totals = result["export"]["totals"]
    print(
        f"  commits={totals['commits']} rollbacks={totals['rollbacks']} "
        f"requests={totals['requests']} restarts={totals['restarts']}"
    )
    group = result.get("group_commit") or {}
    if group.get("flushes"):
        print(
            f"  group commit: {group['records']} record(s) in "
            f"{group['flushes']} fsync batch(es) "
            f"({group['records'] / group['flushes']:.1f} records/fsync)"
        )
    if args.trace:
        print(f"  traced {len(result['traces'])} request(s)")
    if args.oracle:
        oracle = run_oracle(counters=args.counters, ops=args.ops)
        match = oracle["state"] == result["state"]
        print(
            f"oracle run: {oracle['seconds']:.3f}s -> "
            f"{oracle['throughput']:.0f} ops/s; merged state "
            f"{'identical' if match else 'DIVERGED'}"
        )
        if not match:
            return 1
    if args.metrics:
        text = render_shard_prometheus(result["export"])
        if args.metrics == "-":
            sys.stdout.write(text)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote shard metrics to {args.metrics}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.distributed.workload import run_oracle, run_sharded
    from repro.observability.export import render_shard_prometheus

    if args.clients > 1:
        return _cmd_workload_async(args)
    slow_threshold = args.slow_ms / 1e3 if args.slow_ms is not None else None
    result = run_sharded(
        args.shards,
        counters=args.counters,
        ops=args.ops,
        spool_dir=args.spool_dir,
        export=True,
        trace=args.trace,
        verify_traces=args.trace,
        slow_threshold=slow_threshold,
        storage=args.storage,
        hot_set=args.hot_set,
        txn_compile=False if args.no_txn_compile else None,
    )
    print(
        f"sharded run: {args.shards} shard(s), {result['counters']} "
        f"counters, {result['ops']} ops"
    )
    print(
        f"  {result['seconds']:.3f}s -> {result['throughput']:.0f} ops/s"
    )
    totals = result["export"]["totals"]
    print(
        f"  commits={totals['commits']} rollbacks={totals['rollbacks']} "
        f"requests={totals['requests']} restarts={totals['restarts']}"
    )
    if args.trace:
        problems = result["trace_problems"]
        verdict = (
            "all merged traces complete"
            if not problems
            else f"{len(problems)} incomplete trace(s)"
        )
        print(
            f"  traced {len(result['traces'])} request(s), "
            f"spans_dropped={totals.get('spans_dropped', 0)}: {verdict}"
        )
        if slow_threshold is not None:
            print(
                f"  slow requests (>= {args.slow_ms:.1f}ms): "
                f"{len(result['slow_requests'])}"
            )
        if problems:
            for tid, issues in sorted(problems.items()):
                for issue in issues:
                    print(f"    {tid}: {issue}")
            return 1
    if args.oracle:
        oracle = run_oracle(counters=args.counters, ops=args.ops)
        match = oracle["state"] == result["state"]
        print(
            f"oracle run: {oracle['seconds']:.3f}s -> "
            f"{oracle['throughput']:.0f} ops/s; merged state "
            f"{'identical' if match else 'DIVERGED'}"
        )
        if not match:
            return 1
    if args.metrics:
        text = render_shard_prometheus(result["export"])
        if args.metrics == "-":
            sys.stdout.write(text)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote shard metrics to {args.metrics}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TROLL specification tools "
        "(Saake/Jungclaus/Ehrich 1991 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and statically check")
    check.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    check.set_defaults(func=_cmd_check)

    fmt = sub.add_parser("format", help="parse and pretty-print")
    fmt.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    fmt.set_defaults(func=_cmd_format)

    info = sub.add_parser("info", help="print the specification inventory")
    info.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    info.set_defaults(func=_cmd_info)

    dot = sub.add_parser("dot", help="emit a Graphviz class diagram")
    dot.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    dot.set_defaults(func=_cmd_dot)

    library = sub.add_parser("library", help="print a bundled paper listing")
    library.add_argument("name", help="spec constant name, or 'list'")
    library.set_defaults(func=_cmd_library)

    stats = sub.add_parser(
        "stats",
        help="animate a script under metrics instrumentation and print "
        "the counter/timing table",
    )
    stats.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    stats.add_argument(
        "--json", action="store_true", help="print the raw metrics snapshot"
    )
    stats.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    _add_storage_flags(stats)
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="animate a script under span tracing and print the last "
        "synchronization sets as nested trees",
    )
    trace.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    trace.add_argument(
        "--limit", type=int, default=5,
        help="number of synchronization sets to print (0 = all)",
    )
    trace.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also write every root span to PATH as JSON lines",
    )
    trace.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    trace.add_argument(
        "--distributed", nargs="?", const="last", metavar="REQ", default=None,
        help="render merged cross-process request trees from a traced "
        "sharded workload instead; optionally select one trace id "
        "(e.g. t7)",
    )
    trace.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --distributed (default: 4)",
    )
    trace.add_argument(
        "--counters", type=int, default=12,
        help="workload population for --distributed (default: 12)",
    )
    trace.add_argument(
        "--ops", type=int, default=24,
        help="workload occurrences for --distributed (default: 24)",
    )
    trace.set_defaults(func=_cmd_trace)

    replay = sub.add_parser(
        "replay",
        help="animate a script under the event journal, replay each "
        "journal and verify the replayed state matches the live base",
    )
    replay.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    replay.add_argument(
        "--save", metavar="PATH", default=None,
        help="write the recorded journal(s) to PATH as JSON lines",
    )
    replay.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    replay.set_defaults(func=_cmd_replay)

    why = sub.add_parser(
        "why",
        help="provenance query: which occurrence (and calling chain) "
        "wrote an attribute's value",
    )
    why.add_argument(
        "target",
        help="CLASS(KEY).attribute, e.g. \"DEPT('Research').manager\"",
    )
    why.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    why.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    why.set_defaults(func=_cmd_why)

    export = sub.add_parser(
        "export",
        help="export metrics and journal gauges (Prometheus text "
        "format or JSON)",
    )
    export.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    export.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="output format (default: prometheus)",
    )
    export.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the export to FILE instead of stdout",
    )
    export.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    export.add_argument(
        "--fleet", action="store_true",
        help="export the merged fleet view of a sharded workload run "
        "(per-shard + aggregate) instead of animating a script",
    )
    export.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --fleet (default: 4)",
    )
    export.add_argument(
        "--counters", type=int, default=24,
        help="workload population for --fleet (default: 24)",
    )
    export.add_argument(
        "--ops", type=int, default=96,
        help="workload occurrences for --fleet (default: 96)",
    )
    export.set_defaults(func=_cmd_export)

    serve = sub.add_parser(
        "serve",
        help="run a sharded object-community server over a "
        "specification, speaking JSON lines on stdin/stdout",
    )
    serve.add_argument(
        "files", nargs="+", help="specification files ('-' for stdin)"
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="number of shard worker processes (default: 4)",
    )
    serve.add_argument(
        "--pin", action="append", metavar="CLASS=SHARD", default=None,
        help="pin a class (and its role views) to one shard; repeatable",
    )
    serve.add_argument(
        "--spool-dir", metavar="DIR", default=None,
        help="per-shard durability spool (journal + snapshots); "
        "enables crash recovery",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve JSON lines over TCP on this port instead of "
        "stdin/stdout, accepting many concurrent clients against the "
        "async pipelined community (0 picks an ephemeral port)",
    )
    _add_storage_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    workload = sub.add_parser(
        "workload",
        help="drive the built-in counter workload against a sharded "
        "community and report throughput",
    )
    workload.add_argument(
        "--shards", type=int, default=4,
        help="number of shard worker processes (default: 4)",
    )
    workload.add_argument(
        "--counters", type=int, default=120,
        help="population size (default: 120)",
    )
    workload.add_argument(
        "--ops", type=int, default=480,
        help="bump occurrences to drive (default: 480)",
    )
    workload.add_argument(
        "--spool-dir", metavar="DIR", default=None,
        help="per-shard durability spool (journal + snapshots)",
    )
    workload.add_argument(
        "--oracle", action="store_true",
        help="also run the single-process oracle and verify the merged "
        "final state is identical",
    )
    workload.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write per-shard Prometheus gauges to FILE ('-' for stdout)",
    )
    workload.add_argument(
        "--trace", action="store_true",
        help="trace every request end to end and verify each merged "
        "cross-process tree is complete",
    )
    workload.add_argument(
        "--slow-ms", type=float, default=None, dest="slow_ms",
        help="with --trace: capture merged traces of requests slower "
        "than this many milliseconds",
    )
    workload.add_argument(
        "--clients", type=int, default=1,
        help="concurrent client coroutines; 2 or more switches to the "
        "async pipelined coordinator with group-commit workers "
        "(default: 1, the synchronous oracle path)",
    )
    _add_storage_flags(workload)
    workload.set_defaults(func=_cmd_workload)

    top = sub.add_parser(
        "top",
        help="refreshing per-shard utilization/latency table over a "
        "live sharded community driving the built-in workload",
    )
    top.add_argument(
        "--shards", type=int, default=4,
        help="number of shard worker processes (default: 4)",
    )
    top.add_argument(
        "--counters", type=int, default=24,
        help="population size (default: 24)",
    )
    top.add_argument(
        "--ops-per-frame", type=int, default=48, dest="ops_per_frame",
        help="bump occurrences driven between refreshes (default: 48)",
    )
    top.add_argument(
        "--frames", type=int, default=3,
        help="number of refreshes before exiting (default: 3)",
    )
    top.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to sleep between frames (default: 0)",
    )
    top.add_argument(
        "--limit", type=int, default=0,
        help="show only the first N shard rows after sorting (0 = all)",
    )
    top.add_argument(
        "--sort",
        choices=[
            "shard", "reqs", "rate", "util", "commits", "rollbacks",
            "journal", "p50_ms", "p95_ms", "fsync95_ms",
        ],
        default="shard",
        help="sort column (default: shard index; others sort descending)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="emit one JSON document per frame instead of the table",
    )
    top.set_defaults(func=_cmd_top)

    profile = sub.add_parser(
        "profile",
        help="spec-level profiler: attribute wall clock to classes, "
        "events, rules and pipeline phases; export speedscope / "
        "collapsed flamegraphs / Prometheus",
    )
    profile.add_argument(
        "script", nargs="?", default=None,
        help="Python example script to animate (default: built-in demo)",
    )
    profile.add_argument(
        "--mode", choices=["exact", "sampling"], default="exact",
        help="exact instruments every unit; sampling measures every "
        "N-th (default: exact)",
    )
    profile.add_argument(
        "--interval", type=int, default=16,
        help="sampling interval for --mode sampling (default: 16)",
    )
    profile.add_argument(
        "--top", type=int, default=20,
        help="rows (or tree-line budget) to print (default: 20)",
    )
    profile.add_argument(
        "--by", choices=["class", "event", "rule", "phase"], default=None,
        help="aggregate into a flat table instead of the construct tree",
    )
    profile.add_argument(
        "--speedscope", metavar="FILE", default=None,
        help="write the profile as a speedscope JSON file",
    )
    profile.add_argument(
        "--collapsed", metavar="FILE", default=None,
        help="write collapsed flamegraph stacks (flamegraph.pl input)",
    )
    profile.add_argument(
        "--prometheus", metavar="FILE", default=None,
        help="write per-construct Prometheus gauges ('-' for stdout)",
    )
    profile.add_argument(
        "--fleet", action="store_true",
        help="profile a sharded cross-shard workload run and merge the "
        "per-shard profiles (verifies 2PC phase coverage per shard)",
    )
    profile.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --fleet (default: 4)",
    )
    profile.add_argument(
        "--counters", type=int, default=24,
        help="workload population for --fleet (default: 24)",
    )
    profile.add_argument(
        "--ops", type=int, default=96,
        help="workload occurrences for --fleet (default: 96)",
    )
    profile.add_argument(
        "--verbose", action="store_true",
        help="interleave the script's own output",
    )
    profile.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TrollError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
