"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``dot FILE...``    -- emit a Graphviz class diagram of the checked
  specification (classes, view-of, components, interfaces).
* ``check FILE...``  -- parse and statically check specification files,
  printing diagnostics; exit status 1 on errors.
* ``format FILE``    -- parse and pretty-print (normalise) a
  specification to stdout.
* ``info FILE...``   -- print the inventory (classes, objects,
  interfaces, global interaction blocks) of the checked specification.
* ``library NAME``   -- print a specification from the bundled paper
  library (``library list`` enumerates the names).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.diagnostics import TrollError
from repro.lang import check_specification, parse_specification
from repro.lang.printer import print_specification


def _read_sources(paths: List[str]) -> str:
    chunks = []
    for path in paths:
        if path == "-":
            chunks.append(sys.stdin.read())
        else:
            with open(path, "r", encoding="utf-8") as handle:
                chunks.append(handle.read())
    return "\n".join(chunks)


def _cmd_check(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    for diagnostic in checked.diagnostics:
        print(diagnostic)
    errors = len(checked.diagnostics.errors)
    warnings = len(checked.diagnostics.warnings)
    print(f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


def _cmd_format(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    sys.stdout.write(print_specification(spec))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    for name, info in sorted(checked.classes.items()):
        kind = "object" if info.kind == "object" else "object class"
        base = f" (view of {info.base})" if info.base else ""
        print(f"{kind} {name}{base}")
        print(f"  attributes: {', '.join(sorted(info.attributes)) or '-'}")
        print(f"  events:     {', '.join(sorted(info.all_events())) or '-'}")
        if info.components:
            print(f"  components: {', '.join(sorted(info.components))}")
    for name, interface in sorted(checked.interfaces.items()):
        bases = ", ".join(
            f"{cls} {alias}" if alias != cls else cls
            for alias, cls in interface.encapsulating.items()
        )
        print(f"interface class {name} encapsulating {bases}")
        print(f"  attributes: {', '.join(sorted(interface.attributes)) or '-'}")
        print(f"  events:     {', '.join(sorted(interface.events)) or '-'}")
    blocks = len(checked.spec.global_interactions)
    if blocks:
        rules = sum(len(b.rules) for b in checked.spec.global_interactions)
        print(f"global interactions: {rules} rule(s) in {blocks} block(s)")
    if checked.diagnostics.has_errors():
        print(f"({len(checked.diagnostics.errors)} check error(s) -- run 'check')")
        return 1
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.viz import specification_to_dot

    text = _read_sources(args.files)
    spec = parse_specification(text, source=args.files[0])
    checked = check_specification(spec)
    checked.raise_if_errors()
    sys.stdout.write(specification_to_dot(checked))
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    import repro.library as library

    names = [n for n in library.__all__ if n.endswith("_SPEC")]
    if args.name == "list":
        for name in names:
            print(name)
        return 0
    if args.name not in names:
        print(f"unknown library spec {args.name!r}; try 'library list'",
              file=sys.stderr)
        return 1
    sys.stdout.write(getattr(library, args.name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TROLL specification tools "
        "(Saake/Jungclaus/Ehrich 1991 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and statically check")
    check.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    check.set_defaults(func=_cmd_check)

    fmt = sub.add_parser("format", help="parse and pretty-print")
    fmt.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    fmt.set_defaults(func=_cmd_format)

    info = sub.add_parser("info", help="print the specification inventory")
    info.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    info.set_defaults(func=_cmd_info)

    dot = sub.add_parser("dot", help="emit a Graphviz class diagram")
    dot.add_argument("files", nargs="+", help="specification files ('-' for stdin)")
    dot.set_defaults(func=_cmd_dot)

    library = sub.add_parser("library", help="print a bundled paper listing")
    library.add_argument("name", help="spec constant name, or 'list'")
    library.set_defaults(func=_cmd_library)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TrollError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
