"""Figure 1 as a working system: the three-level schema architecture.

Three modules compose an enterprise system:

* ``personnel`` -- conceptual schema: the Section 4 company society;
  two external schemata (the salary-department views and an *active*
  research-administration schema);
* ``storage`` -- the Section 5.2 refinement stack with an internal
  schema binding EMPLOYEE to its implementation-behind-interface, which
  the module verifies by co-simulation;
* ``clock`` -- the Section 6.1 shared system clock, an active object
  whose ticks drive time-dependent activity in the personnel module
  (horizontal composition / communicating object societies).

Run:  python examples/modular_enterprise.py
"""

import datetime

from repro import EventProfile, ExternalSchema, Module, ModuleSystem, RefinementBinding
from repro.library import FULL_COMPANY_SPEC, REFINEMENT_SPEC
from repro.runtime.clock import CLOCK_SPEC, start_clock


def main() -> None:
    enterprise = ModuleSystem()

    # --- the three modules ----------------------------------------------
    personnel = enterprise.add(
        Module(
            "personnel",
            conceptual=FULL_COMPANY_SPEC,
            externals=[
                ExternalSchema("salary_dept", ("SAL_EMPLOYEE", "SAL_EMPLOYEE2")),
                ExternalSchema(
                    "research_admin", ("RESEARCH_EMPLOYEE", "WORKS_FOR"), active=True
                ),
            ],
        )
    )
    storage = enterprise.add(
        Module(
            "storage",
            conceptual=REFINEMENT_SPEC,
            bindings=[RefinementBinding("EMPLOYEE", "EMPL")],
            externals=[ExternalSchema("payroll", ("EMPL",))],
        )
    )
    clock = enterprise.add(
        Module(
            "clock",
            conceptual=CLOCK_SPEC,
            externals=[ExternalSchema("time", (), active=True)],
        )
    )
    print("modules:", sorted(enterprise.modules))

    # --- internal schema: verify the refinement binding ------------------
    storage.system.create("emp_rel")
    reports = storage.verify_bindings(
        {
            "EMPLOYEE": [
                EventProfile("HireEmployee", kind="birth"),
                EventProfile(
                    "IncreaseSalary", args=lambda rng: [rng.randint(0, 400)], weight=3
                ),
                EventProfile("FireEmployee", kind="death"),
            ]
        },
        traces=10, trace_length=8,
    )
    print("storage internal-schema binding verified:",
          reports["EMPLOYEE"].ok,
          f"({reports['EMPLOYEE'].events_run} events co-simulated)")

    # --- populate the conceptual schema of personnel ---------------------
    research = personnel.system.create(
        "DEPT", {"id": "Research"}, "establishment", [datetime.date(1990, 1, 1)]
    )
    alice = personnel.system.create(
        "PERSON", {"Name": "alice", "BirthDate": datetime.date(1958, 5, 5)},
        "hire_into", ["Research", 5000.0],
    )
    personnel.system.occur(research, "hire", [alice])

    # --- hierarchical composition: storage imports a salary view ---------
    salary_schema = enterprise.import_schema("storage", "personnel", "salary_dept")
    view = salary_schema.view("SAL_EMPLOYEE")
    print("\nstorage module reads through the imported external schema:")
    print("  alice salary =", view.get(alice.key, "Salary"))

    # --- horizontal composition: the shared clock ------------------------
    # Every tick grants alice a 2% raise through the personnel module.
    def on_tick(occurrence):
        current = personnel.system.get(alice, "Salary").payload
        personnel.system.occur(alice, "ChangeSalary", [round(current * 1.02, 2)])

    enterprise.connect("clock", "SystemClock", "tick", on_tick, via_schema="time")
    ticker = start_clock(clock.system, horizon=5)
    fired = clock.system.run_active()
    print(f"\nclock ticked {len(fired)} times "
          f"(Now = {clock.system.get(ticker, 'Now')})")
    print("alice salary after 5 yearly reviews:",
          personnel.system.get(alice, "Salary"))

    # the active research_admin schema also pushes the relayed changes
    changes = []
    research_schema = personnel.export("research_admin")
    research_schema.subscribe(
        lambda occurrences: changes.extend(
            o.event for o in occurrences if o.event == "ChangeSalary"
        )
    )
    personnel.system.occur(alice, "ChangeSalary", [6000.0])
    print("research_admin subscribers saw:", changes)


if __name__ == "__main__":
    main()
