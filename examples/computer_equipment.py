"""The Section 3 semantic framework: Examples 3.1-3.9 made executable.

Templates, aspects (``b • t``), inheritance vs. interaction morphisms,
the computer-equipment inheritance schema, derived-aspect closure,
aggregation (SUN from its power supply and cpu) and synchronization by
sharing (the CBZ cable shared by cpu and power supply).

Run:  python examples/computer_equipment.py
"""

from repro.core import (
    InheritanceSchema,
    LTS,
    ObjectCommunity,
    Template,
    TemplateMorphism,
    aspect,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Example 3.2: the inheritance schema, grown top-down.
    # ------------------------------------------------------------------
    schema = InheritanceSchema()
    thing = schema.add_template(Template.build("thing", ["exist"]))
    el_device = Template.build(
        "el_device",
        ["exist", "switch_on", "switch_off"],
        ["is_on"],
        LTS("off")
        .add_transition("off", "switch_on", "on")
        .add_transition("on", "switch_off", "off"),
    )
    calculator = Template.build("calculator", ["exist", "compute"])
    schema.specialize(el_device, thing)
    schema.specialize(calculator, thing)

    # Example 3.5: computer by multiple inheritance, with a protocol that
    # honours the inherited switch-on-before-switch-off discipline
    # (Example 3.4).
    computer = Template.build(
        "computer",
        ["exist", "switch_on", "switch_off", "compute", "boot"],
        ["is_on"],
        LTS("off")
        .add_transition("off", "switch_on", "on")
        .add_transition("on", "boot", "ready")
        .add_transition("ready", "compute", "ready")
        .add_transition("ready", "switch_off", "off")
        .add_transition("on", "switch_off", "off"),
    )
    schema.specialize(computer, el_device, calculator)
    for leaf in ("personal_c", "workstation", "mainframe"):
        schema.specialize(
            Template.build(
                leaf, ["exist", "switch_on", "switch_off", "compute", "boot"], ["is_on"]
            ),
            computer,
        )
    print("inheritance schema templates:", sorted(schema.templates))

    # behaviour containment: the computer IS an el_device behaviourally
    h = schema.path_morphism(computer, el_device)
    print("computer -> el_device preserves behaviour:", h.preserves_behavior())

    # ------------------------------------------------------------------
    # Example 3.1: aspects of the SUN workstation.
    # ------------------------------------------------------------------
    workstation = schema.templates["workstation"]
    sun = aspect("SUN", workstation)
    print("\nSUN's aspects (derived-aspect closure):")
    for derived in schema.object_of(sun):
        print("   ", derived)

    # ------------------------------------------------------------------
    # Example 3.6 flavour: generalization upward.
    # ------------------------------------------------------------------
    person = schema.add_template(Template.build("person", ["sign"]))
    company = schema.add_template(Template.build("company", ["sign"]))
    contract_partner = Template.build("contract_partner", ["sign"])
    schema.abstract(contract_partner, person, company)
    print("\ngeneralization: person/company ->",
          [t.name for t in schema.ancestors(person)])

    # ------------------------------------------------------------------
    # Examples 3.7 / 3.9: the community -- aggregation and sharing.
    # ------------------------------------------------------------------
    community = ObjectCommunity(schema=schema)
    powsply = Template.build("powsply", ["switch_on", "switch_off"])
    cpu = Template.build("cpu", ["switch_on", "switch_off"])
    cable = Template.build("cable", ["switch_on", "switch_off"], ["voltage"])
    pxx, cyy, cbz = aspect("PXX", powsply), aspect("CYY", cpu), aspect("CBZ", cable)
    community.add_aspect(pxx)
    community.add_aspect(cyy)

    # aggregation: assemble SUN from its parts (Example 3.9)
    sun_morphisms = community.aggregate(
        sun, pxx, cyy,
        morphisms=[
            TemplateMorphism(
                "f", workstation, powsply,
                {"switch_on": "switch_on", "switch_off": "switch_off"},
            ),
            TemplateMorphism(
                "g", workstation, cpu,
                {"switch_on": "switch_on", "switch_off": "switch_off"},
            ),
        ],
    )
    print("\naggregation morphisms:")
    for morphism in sun_morphisms:
        print(f"    {morphism}  [{morphism.kind}]")

    # sharing: the cable CBZ as a shared part (Example 3.7)
    community.synchronize(
        cbz, cyy, pxx,
        morphisms=[
            TemplateMorphism(
                "sc", cpu, cable,
                {"switch_on": "switch_on", "switch_off": "switch_off"},
            ),
            TemplateMorphism(
                "sp", powsply, cable,
                {"switch_on": "switch_on", "switch_off": "switch_off"},
            ),
        ],
    )
    print("\nsharing diagrams:")
    for diagram in community.sharing_diagrams():
        print("   ", diagram)

    print("\ncommunity summary:")
    print("  aspects:", len(community.aspects))
    print("  inheritance morphisms:", len(community.inheritance_morphisms()))
    print("  interaction morphisms:", len(community.interaction_morphisms()))
    print("  identity problems:", community.check_identity_uniqueness() or "none")


if __name__ == "__main__":
    main()
