"""A bank account: behaviour patterns and obligations together.

Demonstrates the two life-cycle disciplines the TROLL family layers on
top of permissions:

* a **behaviour pattern** (safety): the account protocol
  ``open; (deposit | withdraw | freeze;thaw)*; close`` -- no money
  movement while frozen, no closing mid-freeze;
* **obligations** (liveness): every account must be audited before it
  may close.

Run:  python examples/bank_account.py
"""

from repro import ObjectBase, PermissionDenied

BANK_SPEC = """
object class ACCOUNT
  identification
    Number: string;
  template
    attributes
      Balance: integer initially 0;
      Audited: bool initially false;
    events
      birth open;
      deposit(integer);
      withdraw(integer);
      freeze;
      thaw;
      audit;
      death close;
    valuation
      variables k: integer;
      deposit(k) Balance = Balance + k;
      withdraw(k) Balance = Balance - k;
      audit Audited = true;
    permissions
      variables k: integer;
      { Balance >= k } withdraw(k);
      { Balance = 0 } close;
    behavior
      patterns (open; (deposit | withdraw | (freeze; thaw))*; close);
    obligations
      audit;
end object class ACCOUNT;
"""


def expect_denied(label, action):
    try:
        action()
        print(f"  BUG: {label} was admitted")
    except PermissionDenied as denial:
        print(f"  {label}: denied -- {denial.message.split(': ', 1)[-1]}")


def main() -> None:
    system = ObjectBase(BANK_SPEC)
    account = system.create("ACCOUNT", {"Number": "DE-1991"}, "open")
    system.occur(account, "deposit", [120])
    print("balance:", system.get(account, "Balance"))

    print("\nsafety (behaviour pattern):")
    system.occur(account, "freeze")
    expect_denied("withdraw while frozen",
                  lambda: system.occur(account, "withdraw", [10]))
    expect_denied("close while frozen",
                  lambda: system.occur(account, "close"))
    system.occur(account, "thaw")
    system.occur(account, "withdraw", [120])

    print("\nliveness (obligations):")
    print("  pending:", system.pending_obligations(account))
    expect_denied("close before audit",
                  lambda: system.occur(account, "close"))
    system.occur(account, "audit")
    print("  pending after audit:", system.pending_obligations(account))

    system.occur(account, "close")
    print("\naccount closed:", account.dead)
    print("life cycle:", " -> ".join(step.event for step in account.trace))


if __name__ == "__main__":
    main()
