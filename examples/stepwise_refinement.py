"""Stepwise refinement: the Section 5.2 EMPLOYEE-over-emp_rel stack.

The paper's formal-implementation recipe, executed:

1. the *abstract* class EMPLOYEE;
2. the *base object* emp_rel (a database relation as an object, with
   key-constraint permissions and the delete-then-insert update
   transaction);
3. the *implementation class* EMPL_IMPL, incorporating emp_rel and
   implementing the abstract events by event calling;
4. the *hiding interface* EMPL;
5. the correctness obligation, checked by co-simulation: "all
   properties of the original EMPLOYEE specification can be derived
   from EMPL, too";
6. one level further down (the paper's closing remark): the relation
   object regenerated automatically from a relational schema, over a
   B-tree access path.

Run:  python examples/stepwise_refinement.py
"""

import datetime

from repro import EventProfile, ObjectBase, RefinementChecker, open_view
from repro.library import REFINEMENT_SPEC
from repro.relational import BTreeStorage, Relation, RelationSchema, relation_object_spec
from repro.datatypes.sorts import DATE, INTEGER, STRING


def main() -> None:
    system = ObjectBase(REFINEMENT_SPEC)
    system.create("emp_rel")  # the shared base object

    # --- the implementation in action ---------------------------------
    alice = system.create(
        "EMPL_IMPL",
        {"EmpName": "alice", "EmpBirth": datetime.date(1960, 1, 1)},
        "HireEmployee",
    )
    system.occur(alice, "IncreaseSalary", [400])
    relation = system.single_object("emp_rel")
    print("relation state:", system.get(relation, "Emps"))
    print("alice.Salary (derived through the query algebra):",
          system.get(alice, "Salary"))

    # --- the hiding interface ------------------------------------------
    payroll = open_view(system, "EMPL")
    print("\nthrough the EMPL interface:")
    print("  visible:", payroll.visible_attributes, "/", payroll.visible_events)
    payroll.call(alice.key, "IncreaseSalary", [100])
    print("  after IncreaseSalary(100):", payroll.get(alice.key, "Salary"))

    # --- the correctness obligation ------------------------------------
    checker = RefinementChecker(system, "EMPLOYEE", "EMPL")
    profiles = [
        EventProfile("HireEmployee", kind="birth"),
        EventProfile(
            "IncreaseSalary", args=lambda rng: [rng.randint(0, 500)], weight=3
        ),
        EventProfile("FireEmployee", kind="death"),
    ]
    report = checker.random_conformance(profiles, traces=25, trace_length=12, seed=91)
    print("\nrefinement conformance (25 random traces):")
    print(f"  ok = {report.ok}")
    print(f"  events exercised = {report.events_run} "
          f"(accepted {report.accepted_events}, "
          f"rejected-by-both {report.rejected_events})")
    report.raise_if_failed()

    # --- one level further down: the generated relation object ----------
    schema = RelationSchema(
        "emp",
        (("ename", STRING), ("ebirth", DATE), ("esalary", INTEGER)),
        ("ename", "ebirth"),
    )
    generated_text = relation_object_spec(schema)
    print("\nautomatically derived relation object (first lines):")
    for line in generated_text.splitlines()[:8]:
        print("   ", line)
    generated = ObjectBase(generated_text)
    rel = generated.create("emp_rel")
    generated.occur(rel, "InsertEmp", ["carol", datetime.date(1980, 3, 3), 100])
    generated.occur(rel, "UpdateEmp", ["carol", datetime.date(1980, 3, 3), 180])
    print("generated object state:", generated.get(rel, "Emps"))

    # ... and the access-path layer below it
    btree_relation = Relation(schema, "btree")
    for index in range(8):
        btree_relation.insert(f"emp{index}", datetime.date(1960, 1, 1), index * 100)
    assert isinstance(btree_relation.storage, BTreeStorage)
    print("\nB-tree access path, ordered range scan emp2..emp4:")
    for row in btree_relation.storage.range(
        ("emp2", (1960, 1, 1)), ("emp4", (1960, 1, 1))
    ):
        print("   ", row["ename"], row["esalary"])


if __name__ == "__main__":
    main()
