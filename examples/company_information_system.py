"""The Section 4 / 5.1 company information system, end to end.

Everything the paper's running example does, in one script: complex
objects (TheCompany with a LIST(DEPT) component), roles/phases (MANAGER
as a phase of PERSON with a salary constraint), global interactions
(promotion calls become_manager), and all four interface views
(projection, derived, selection, join).

Run:  python examples/company_information_system.py
"""

import datetime

from repro import ConstraintViolation, ObjectBase, open_view
from repro.library import FULL_COMPANY_SPEC


def main() -> None:
    system = ObjectBase(FULL_COMPANY_SPEC)

    # --- populate the object base -------------------------------------
    company = system.create("TheCompany", None, "founded", ["ACME Computing"])
    research = system.create(
        "DEPT", {"id": "Research"}, "establishment", [datetime.date(1990, 1, 1)]
    )
    sales = system.create(
        "DEPT", {"id": "Sales"}, "establishment", [datetime.date(1991, 3, 1)]
    )
    for dept in (research, sales):
        system.occur(company, "add_dept", [dept])

    alice = system.create(
        "PERSON", {"Name": "alice", "BirthDate": datetime.date(1958, 5, 5)},
        "hire_into", ["Research", 6200.0],
    )
    bob = system.create(
        "PERSON", {"Name": "bob", "BirthDate": datetime.date(1971, 9, 9)},
        "hire_into", ["Sales", 3100.0],
    )
    system.occur(research, "hire", [alice])
    system.occur(sales, "hire", [bob])
    print("company:", system.get(company, "CName"))
    print("departments:", system.get(company, "depts"))

    # --- roles: promotion through the global interaction --------------
    # DEPT(D).new_manager(P) >> PERSON(P).become_manager
    system.occur(research, "new_manager", [alice])
    manager = system.find("MANAGER", alice.key)
    print("\nalice promoted; MANAGER aspect:", manager)
    print("IsManager through PERSON:", system.get(alice, "IsManager"))

    # the MANAGER constraint (Salary >= 5000) guards the whole
    # synchronization set: promoting bob (3100) rolls everything back
    try:
        system.occur(sales, "new_manager", [bob])
    except ConstraintViolation as violation:
        print("\nbob's promotion rejected atomically:")
        print("   ", violation.message)
        print("    sales.manager unset:", "manager" not in sales.state)

    # official car for the manager aspect
    car = system.create(
        "CAR", {"Registration": "BS-AC-91"}, "register", ["Tower 3000"]
    )
    system.occur(research, "assign_official_car", [car, alice])
    print("\nalice's official car:", system.get(manager, "OfficialCar"))

    # --- interfaces (Section 5.1) --------------------------------------
    print("\n-- SAL_EMPLOYEE (projection) --")
    salary_view = open_view(system, "SAL_EMPLOYEE")
    for key in (alice.key, bob.key):
        print(
            f"  {salary_view.get(key, 'Name')}:",
            salary_view.get(key, "Salary"),
            "| income 1991:",
            salary_view.get(key, "IncomeInYear", [1991]),
        )

    print("\n-- SAL_EMPLOYEE2 (derived attribute and event) --")
    salary2 = open_view(system, "SAL_EMPLOYEE2")
    print("  bob CurrentIncomePerYear:", salary2.get(bob.key, "CurrentIncomePerYear"))
    salary2.call(bob.key, "IncreaseSalary")  # >> ChangeSalary(Salary * 1.1)
    print("  bob after IncreaseSalary:", salary2.get(bob.key, "Salary"))

    print("\n-- RESEARCH_EMPLOYEE (selection) --")
    research_view = open_view(system, "RESEARCH_EMPLOYEE")
    print("  visible:", [str(i) for i in research_view.instances()])
    print("  includes bob?", research_view.includes(bob.key))

    print("\n-- WORKS_FOR (join view) --")
    works_for = open_view(system, "WORKS_FOR")
    for row in works_for.rows():
        print(f"  {row['PersonName']} works for {row['DeptName']}")

    # --- classes as objects --------------------------------------------
    print("\nclass objects:")
    for class_name in ("DEPT", "PERSON", "MANAGER"):
        cls = system.class_object(class_name)
        print(f"  {class_name}: count = {cls.count}")


if __name__ == "__main__":
    main()
