"""A lending library: the TROLL toolchain on a fresh domain.

Not from the paper -- this example shows the library being *adopted*:
a new domain specified in TROLL text, checked, animated, observed
through an interface, and persisted.  Features on display: ``initially``
defaults, state permissions, static constraints, cross-object atomicity
through global interactions, derived interface attributes, and
object-base snapshots.

Run:  python examples/lending_library.py
"""

from repro import ObjectBase, PermissionDenied, open_view
from repro.library import LENDING_LIBRARY_SPEC
from repro.runtime import dump_json, restore_json


def main() -> None:
    system = ObjectBase(LENDING_LIBRARY_SPEC)

    # --- stock and membership -------------------------------------------
    manual = system.create("BOOK", {"Isbn": "3-540-001"}, "acquire", ["TROLL Manual"])
    report = system.create("BOOK", {"Isbn": "3-540-002"}, "acquire", ["IS-CORE Report"])
    anna = system.create("MEMBER", {"MName": "anna"}, "join")
    bert = system.create("MEMBER", {"MName": "bert"}, "join")
    print("stock:", system.class_object("BOOK").count, "books;",
          system.class_object("MEMBER").count, "members")

    # --- borrowing: the member's borrow calls the book's lend -----------
    system.occur(anna, "borrow", [manual])
    print("\nanna borrows the manual:")
    print("  anna.Borrowed =", system.get(anna, "Borrowed"))
    print("  manual.OnLoan =", system.get(manual, "OnLoan"))

    # cross-object atomicity: bert cannot borrow the same copy; the
    # denial of BOOK.lend rolls back bert's membership update too
    try:
        system.occur(bert, "borrow", [manual])
    except PermissionDenied as denial:
        print("\nbert's borrow of the same copy rejected atomically:")
        print("   ", denial.message)
        print("    bert.Borrowed =", system.get(bert, "Borrowed"))

    # --- the circulation interface --------------------------------------
    circulation = open_view(system, "CIRCULATION")
    print("\ncirculation view:")
    for member in (anna, bert):
        print(
            f"  {circulation.get(member.key, 'MName')}:"
            f" {circulation.get(member.key, 'LoanCount')} loan(s),"
            f" fines? {circulation.get(member.key, 'HasFines')}"
        )

    # --- fines gate departure --------------------------------------------
    system.occur(anna, "incur_fine", [5])
    system.occur(anna, "give_back", [manual])
    try:
        system.occur(anna, "leave")
    except PermissionDenied:
        print("\nanna cannot leave with open fines "
              f"(Fines = {system.get(anna, 'Fines')})")
    system.occur(anna, "pay_fine", [5])

    # --- snapshot, restore, continue --------------------------------------
    snapshot = dump_json(system)
    print(f"\nobject base snapshot: {len(snapshot)} bytes")
    restored = restore_json(ObjectBase(LENDING_LIBRARY_SPEC), snapshot)
    anna2 = restored.instance("MEMBER", "anna")
    restored.occur(anna2, "leave")
    print("restored base continues: anna left =", anna2.dead)
    print("original base unaffected: anna alive =",
          system.instance("MEMBER", "anna").alive)


if __name__ == "__main__":
    main()
