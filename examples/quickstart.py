"""Quickstart: specify, check and animate a TROLL object class.

This is the paper's DEPT example (Section 4) driven end to end: parse
the specification text, run the static checker, create a department,
drive events, and watch the temporal permissions at work.

Run:  python examples/quickstart.py
"""

import datetime

from repro import ObjectBase, PermissionDenied, parse_specification, check_specification
from repro.library import DEPT_SPEC, PERSON_MANAGER_SPEC, CAR_SPEC


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Parse and check the specification text.
    # ------------------------------------------------------------------
    text = CAR_SPEC + PERSON_MANAGER_SPEC + DEPT_SPEC
    spec = parse_specification(text)
    checked = check_specification(spec)
    checked.raise_if_errors()
    dept = checked.class_info("DEPT")
    print("DEPT signature:")
    print("  attributes:", ", ".join(sorted(dept.attributes)))
    print("  events:    ", ", ".join(sorted(dept.events)))

    # ------------------------------------------------------------------
    # 2. Animate: an object base over the checked specification.
    # ------------------------------------------------------------------
    system = ObjectBase(checked)
    sales = system.create(
        "DEPT", {"id": "Sales"}, "establishment", [datetime.date(1991, 3, 1)]
    )
    alice = system.create(
        "PERSON",
        {"Name": "alice", "BirthDate": datetime.date(1960, 1, 1)},
        "hire_into", ["Sales", 5500.0],
    )
    print("\nestablished:", sales, "on", system.get(sales, "est_date"))

    # ------------------------------------------------------------------
    # 3. Valuation: hire updates the member set.
    # ------------------------------------------------------------------
    system.occur(sales, "hire", [alice])
    print("after hire:  employees =", system.get(sales, "employees"))

    # ------------------------------------------------------------------
    # 4. Permissions: the paper's two temporal rules.
    #    { sometime(after(hire(P))) } fire(P);
    # ------------------------------------------------------------------
    bob_id = {"Name": "bob", "BirthDate": datetime.date(1970, 2, 2)}
    bob = system.create("PERSON", bob_id, "hire_into", ["Sales", 3000.0])
    try:
        system.occur(sales, "fire", [bob])
    except PermissionDenied as denial:
        print("\nfire(bob) denied (never hired):")
        print("   ", denial.message)

    #    closure only after every past member was fired
    try:
        system.occur(sales, "closure")
    except PermissionDenied as denial:
        print("closure denied (alice still employed):")
        print("   ", denial.message)

    system.occur(sales, "fire", [alice])
    system.occur(sales, "closure")
    print("\nafter fire(alice): closure admitted; department is dead:", sales.dead)

    # ------------------------------------------------------------------
    # 5. The recorded life cycle.
    # ------------------------------------------------------------------
    print("\nlife cycle of Sales:")
    for step in sales.trace:
        args = ", ".join(str(a) for a in step.args)
        print(f"  {step.event}({args})")


if __name__ == "__main__":
    main()
